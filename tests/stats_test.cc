#include "util/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace alphaevolve {
namespace {

TEST(StatsTest, MeanBasics) {
  EXPECT_DOUBLE_EQ(Mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(Mean(std::vector<double>{4.0}), 4.0);
  EXPECT_DOUBLE_EQ(Mean(std::vector<double>{1.0, 2.0, 3.0}), 2.0);
}

TEST(StatsTest, VarianceIsSampleVariance) {
  // Known: var([2,4,4,4,5,5,7,9]) population = 4, sample = 32/7.
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(Variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(StdDev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatsTest, VarianceDegenerate) {
  EXPECT_DOUBLE_EQ(Variance(std::vector<double>{5.0}), 0.0);
  EXPECT_DOUBLE_EQ(Variance(std::vector<double>{}), 0.0);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 1.0, 1e-12);
}

TEST(StatsTest, PearsonPerfectAntiCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{5, 4, 3, 2, 1};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), -1.0, 1e-12);
}

TEST(StatsTest, PearsonShiftScaleInvariant) {
  const std::vector<double> xs{1.5, -2.0, 0.3, 4.4};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(3.0 * x - 7.0);
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 1.0, 1e-12);
}

TEST(StatsTest, PearsonDegenerateReturnsZero) {
  const std::vector<double> flat{3, 3, 3, 3};
  const std::vector<double> ys{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(flat, ys), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation(ys, flat), 0.0);
  EXPECT_DOUBLE_EQ(
      PearsonCorrelation(std::vector<double>{1.0}, std::vector<double>{2.0}),
      0.0);
}

TEST(StatsTest, PearsonKnownValue) {
  // Computed independently: corr([1,2,3,5],[1,3,2,6]) ≈ 0.8528028654.
  const std::vector<double> xs{1, 2, 3, 5};
  const std::vector<double> ys{1, 3, 2, 6};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 0.9035079029052513, 1e-9);
}

TEST(StatsTest, ArgSortStableAscending) {
  const std::vector<double> xs{3.0, 1.0, 2.0, 1.0};
  const auto idx = ArgSort(xs);
  ASSERT_EQ(idx.size(), 4u);
  EXPECT_EQ(idx[0], 1);  // first 1.0 (stable)
  EXPECT_EQ(idx[1], 3);  // second 1.0
  EXPECT_EQ(idx[2], 2);
  EXPECT_EQ(idx[3], 0);
}

TEST(StatsTest, RanksWithTiesAveragesTies) {
  const std::vector<double> xs{10, 20, 20, 30};
  const auto r = RanksWithTies(xs);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(StatsTest, RanksAllEqual) {
  const std::vector<double> xs{7, 7, 7};
  const auto r = RanksWithTies(xs);
  for (double v : r) EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(StatsTest, SpearmanMonotoneNonlinear) {
  // y = x^3 is monotone: Spearman 1, Pearson < 1.
  const std::vector<double> xs{-2, -1, 0, 1, 2, 3};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(x * x * x);
  EXPECT_NEAR(SpearmanCorrelation(xs, ys), 1.0, 1e-12);
  EXPECT_LT(PearsonCorrelation(xs, ys), 1.0);
}

TEST(StatsTest, AllFinite) {
  EXPECT_TRUE(AllFinite(std::vector<double>{1.0, -2.0, 0.0}));
  EXPECT_FALSE(AllFinite(std::vector<double>{1.0, std::nan("")}));
  EXPECT_FALSE(
      AllFinite(std::vector<double>{std::numeric_limits<double>::infinity()}));
}

// Property sweep: correlation is symmetric and bounded for random data.
class StatsPropertySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StatsPropertySweep, CorrelationBoundedAndSymmetric) {
  Rng rng(GetParam());
  std::vector<double> xs(40), ys(40);
  for (auto& x : xs) x = rng.Gaussian();
  for (auto& y : ys) y = rng.Gaussian();
  const double rxy = PearsonCorrelation(xs, ys);
  const double ryx = PearsonCorrelation(ys, xs);
  EXPECT_DOUBLE_EQ(rxy, ryx);
  EXPECT_GE(rxy, -1.0);
  EXPECT_LE(rxy, 1.0);
  // Self-correlation is exactly 1 for non-degenerate data.
  EXPECT_NEAR(PearsonCorrelation(xs, xs), 1.0, 1e-12);
}

TEST_P(StatsPropertySweep, RanksArePermutationAveragePreserving) {
  Rng rng(GetParam());
  std::vector<double> xs(25);
  for (auto& x : xs) x = rng.UniformInt(8);  // force ties
  const auto r = RanksWithTies(xs);
  // Sum of ranks must equal n(n+1)/2 regardless of ties.
  double sum = 0;
  for (double v : r) sum += v;
  EXPECT_NEAR(sum, 25.0 * 26.0 / 2.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsPropertySweep,
                         ::testing::Range(uint64_t{0}, uint64_t{8}));

}  // namespace
}  // namespace alphaevolve

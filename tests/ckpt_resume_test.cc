// The tentpole determinism contract: a search resumed from any batch-barrier
// snapshot finishes bit-identical to the uninterrupted run — same best
// program, fitness, stats counters (except wall-clock), trajectory, and
// fingerprint-cache contents — across the synchronous and pipelined drivers
// and across thread counts. Covers the in-memory sink path (every snapshot
// the driver captures is a valid resume point), the on-disk
// CheckpointWriter -> LoadNewest -> DecodeSearchSnapshot path, and recovery
// when the newest on-disk generation is torn.

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/checkpoint.h"
#include "core/evaluator_pool.h"
#include "core/evolution.h"
#include "core/generators.h"
#include "market/simulator.h"
#include "obs/telemetry.h"
#include "util/fault.h"

namespace alphaevolve::core {
namespace {

/// In-memory CheckpointSink that deep-copies every snapshot the driver
/// offers at the given batch cadence.
class RecordingSink : public CheckpointSink {
 public:
  explicit RecordingSink(int every_batches) : every_(every_batches) {}
  bool WantCheckpoint(int64_t batches_committed) override {
    return every_ > 0 && batches_committed % every_ == 0;
  }
  void WriteCheckpoint(const EvolutionCheckpoint& checkpoint) override {
    snapshots.push_back(checkpoint);
  }
  std::vector<EvolutionCheckpoint> snapshots;

 private:
  int every_;
};

class CkptResumeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    market::MarketConfig mc = market::MarketConfig::BenchScale();
    mc.num_stocks = 24;
    mc.num_days = 220;
    mc.seed = 13;
    dataset_ = new market::Dataset(
        market::Dataset::Simulate(mc, market::DatasetConfig{}));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  void SetUp() override { fault::SetForTesting(fault::Kind::kNone); }
  void TearDown() override { fault::ClearForTesting(); }

  static EvolutionConfig BaseConfig() {
    EvolutionConfig cfg;
    cfg.max_candidates = 300;
    cfg.seed = 7;
    cfg.trajectory_stride = 25;
    cfg.batch_size = 8;
    return cfg;
  }

  /// Bitwise result parity, wall-clock excluded (the one field a resumed
  /// run can never reproduce; it accumulates prior + current time instead).
  static void ExpectIdentical(const EvolutionResult& a,
                              const EvolutionResult& b) {
    ASSERT_EQ(a.has_alpha, b.has_alpha);
    EXPECT_EQ(a.best, b.best);
    EXPECT_DOUBLE_EQ(a.best_fitness, b.best_fitness);
    EXPECT_EQ(a.stats.candidates, b.stats.candidates);
    EXPECT_EQ(a.stats.evaluated, b.stats.evaluated);
    EXPECT_EQ(a.stats.pruned_redundant, b.stats.pruned_redundant);
    EXPECT_EQ(a.stats.cache_hits, b.stats.cache_hits);
    EXPECT_EQ(a.stats.cutoff_discarded, b.stats.cutoff_discarded);
    EXPECT_EQ(a.stats.eval_timeouts, b.stats.eval_timeouts);
    ASSERT_EQ(a.trajectory.size(), b.trajectory.size());
    for (size_t i = 0; i < a.trajectory.size(); ++i) {
      EXPECT_EQ(a.trajectory[i].first, b.trajectory[i].first);
      EXPECT_DOUBLE_EQ(a.trajectory[i].second, b.trajectory[i].second);
    }
  }

  static market::Dataset* dataset_;
};

market::Dataset* CkptResumeTest::dataset_ = nullptr;

TEST_F(CkptResumeTest, EverySnapshotIsABitIdenticalResumePoint) {
  // Serial synchronous driver: the uninterrupted reference, then a
  // checkpointed run (which must itself be unperturbed), then a fresh
  // search resumed from EVERY recorded snapshot.
  EvolutionConfig cfg = BaseConfig();
  cfg.pipeline_depth = 0;
  Evaluator evaluator(*dataset_, EvaluatorConfig{});
  const AlphaProgram init = MakeExpertAlpha(dataset_->window());

  Evolution reference_evo(evaluator, cfg);
  const EvolutionResult reference = reference_evo.Run(init);
  ASSERT_TRUE(reference.has_alpha);
  const auto reference_cache = reference_evo.CacheSnapshot();

  RecordingSink sink(/*every_batches=*/4);
  Evolution recorded_evo(evaluator, cfg);
  recorded_evo.UseCheckpointSink(&sink);
  const EvolutionResult recorded = recorded_evo.Run(init);
  ExpectIdentical(reference, recorded);  // checkpointing never perturbs
  ASSERT_GE(sink.snapshots.size(), 5u);

  int64_t prev_batches = 0;
  for (size_t i = 0; i < sink.snapshots.size(); ++i) {
    const EvolutionCheckpoint& snap = sink.snapshots[i];
    SCOPED_TRACE(::testing::Message()
                 << "snapshot " << i << " @ batch " << snap.batches_committed);
    EXPECT_GT(snap.batches_committed, prev_batches);
    prev_batches = snap.batches_committed;
    EXPECT_EQ(snap.config_seed, cfg.seed);
    // Batches are at most batch_size candidates wide (shorter ones occur —
    // e.g. the driver clips against the candidate budget).
    EXPECT_GT(snap.stats.candidates, 0);
    EXPECT_LE(snap.stats.candidates,
              snap.batches_committed * cfg.batch_size);

    Evolution resumed_evo(evaluator, cfg);
    resumed_evo.ResumeFrom(snap);
    const EvolutionResult resumed = resumed_evo.Run(init);
    ExpectIdentical(reference, resumed);
    EXPECT_EQ(resumed_evo.CacheSnapshot(), reference_cache);
  }
}

TEST_F(CkptResumeTest, ResumeParityAcrossThreadsAndDepths) {
  // The acceptance matrix: threads {1, 8} x pipeline depths {0, 2}. One
  // shared serial reference; each cell records its own snapshots (captures
  // happen at drained barriers, so the pipelined driver's snapshots are the
  // synchronous driver's states) and resumes from first, middle, and last.
  EvolutionConfig cfg = BaseConfig();
  cfg.pipeline_depth = 0;
  Evaluator evaluator(*dataset_, EvaluatorConfig{});
  const AlphaProgram init = MakeExpertAlpha(dataset_->window());
  Evolution reference_evo(evaluator, cfg);
  const EvolutionResult reference = reference_evo.Run(init);
  ASSERT_TRUE(reference.has_alpha);
  const auto reference_cache = reference_evo.CacheSnapshot();

  for (const int threads : {1, 8}) {
    for (const int depth : {0, 2}) {
      SCOPED_TRACE(::testing::Message()
                   << "threads=" << threads << " depth=" << depth);
      cfg.pipeline_depth = depth;
      EvaluatorPool pool(*dataset_, EvaluatorConfig{}, threads);

      RecordingSink sink(/*every_batches=*/4);
      Evolution recorded_evo(pool, cfg);
      recorded_evo.UseCheckpointSink(&sink);
      ExpectIdentical(reference, recorded_evo.Run(init));
      ASSERT_GE(sink.snapshots.size(), 3u);

      const size_t picks[] = {0, sink.snapshots.size() / 2,
                              sink.snapshots.size() - 1};
      for (const size_t pick : picks) {
        SCOPED_TRACE(::testing::Message() << "resume from snapshot " << pick);
        Evolution resumed_evo(pool, cfg);
        resumed_evo.ResumeFrom(sink.snapshots[pick]);
        const EvolutionResult resumed = resumed_evo.Run(init);
        ExpectIdentical(reference, resumed);
        EXPECT_EQ(resumed_evo.CacheSnapshot(), reference_cache);
      }
    }
  }
}

TEST_F(CkptResumeTest, SnapshotSurvivesTheWireBitIdentically) {
  // Serialize -> deserialize between capture and resume: the decoded
  // snapshot must drive the same continuation as the in-memory one.
  EvolutionConfig cfg = BaseConfig();
  cfg.pipeline_depth = 2;
  EvaluatorPool pool(*dataset_, EvaluatorConfig{}, 4);
  const AlphaProgram init = MakeExpertAlpha(dataset_->window());

  Evolution reference_evo(pool, cfg);
  const EvolutionResult reference = reference_evo.Run(init);

  RecordingSink sink(/*every_batches=*/8);
  Evolution recorded_evo(pool, cfg);
  recorded_evo.UseCheckpointSink(&sink);
  recorded_evo.Run(init);
  ASSERT_FALSE(sink.snapshots.empty());

  const EvolutionCheckpoint& mid =
      sink.snapshots[sink.snapshots.size() / 2];
  const EvolutionCheckpoint decoded =
      ckpt::DecodeSearchSnapshot(ckpt::EncodeSearchSnapshot(mid));
  Evolution resumed_evo(pool, cfg);
  resumed_evo.ResumeFrom(decoded);
  ExpectIdentical(reference, resumed_evo.Run(init));
}

class CkptResumeFileTest : public CkptResumeTest {
 protected:
  void SetUp() override {
    CkptResumeTest::SetUp();
    dir_ = (std::filesystem::temp_directory_path() /
            ("ae_resume_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    std::filesystem::remove_all(dir_);
    CkptResumeTest::TearDown();
  }
  std::string dir_;
};

TEST_F(CkptResumeFileTest, DiskRoundTripResumeMatchesUninterrupted) {
  // The full production path: CheckpointWriter publishes generations during
  // the run; a "new process" loads the newest with LoadNewest, decodes, and
  // resumes to the identical final result.
  EvolutionConfig cfg = BaseConfig();
  cfg.pipeline_depth = 0;
  Evaluator evaluator(*dataset_, EvaluatorConfig{});
  const AlphaProgram init = MakeExpertAlpha(dataset_->window());

  Evolution reference_evo(evaluator, cfg);
  const EvolutionResult reference = reference_evo.Run(init);

  ckpt::WriterOptions options;
  options.every_batches = 4;
  options.keep = 10;
  // Synchronous publishes: every due barrier becomes a generation, so the
  // counts below are deterministic (background mode coalesces under load;
  // checkpoint_test covers it).
  options.background = false;
  ckpt::CheckpointWriter writer(dir_, "search", options);
  Evolution recorded_evo(evaluator, cfg);
  recorded_evo.UseCheckpointSink(&writer);
  ExpectIdentical(reference, recorded_evo.Run(init));
  ASSERT_GE(writer.generations_written(), 3);

  const auto loaded = ckpt::LoadNewest(dir_, "search");
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->kind, ckpt::kSearchSnapshotKind);
  Evolution resumed_evo(evaluator, cfg);
  resumed_evo.ResumeFrom(ckpt::DecodeSearchSnapshot(loaded->payload));
  ExpectIdentical(reference, resumed_evo.Run(init));
}

TEST_F(CkptResumeFileTest, TornNewestGenerationFallsBackAndResumes) {
  // Corrupting the newest on-disk snapshot must cost at most one generation
  // of progress, never correctness: LoadNewest warns, falls back, and the
  // resumed run still finishes bit-identical.
  EvolutionConfig cfg = BaseConfig();
  cfg.pipeline_depth = 0;
  Evaluator evaluator(*dataset_, EvaluatorConfig{});
  const AlphaProgram init = MakeExpertAlpha(dataset_->window());

  Evolution reference_evo(evaluator, cfg);
  const EvolutionResult reference = reference_evo.Run(init);

  ckpt::WriterOptions options;
  options.every_batches = 4;
  options.keep = 10;
  // Synchronous publishes: every due barrier becomes a generation, so the
  // counts below are deterministic (background mode coalesces under load;
  // checkpoint_test covers it).
  options.background = false;
  ckpt::CheckpointWriter writer(dir_, "search", options);
  Evolution recorded_evo(evaluator, cfg);
  recorded_evo.UseCheckpointSink(&writer);
  recorded_evo.Run(init);
  const int64_t newest = writer.last_generation();
  ASSERT_GE(newest, 2);

  // Tear the newest generation in half, as a crash mid-page-writeback would.
  char name[64];
  std::snprintf(name, sizeof(name), "/search.g%08lld.ckpt",
                static_cast<long long>(newest));
  const std::string path = dir_ + name;
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_FALSE(bytes.empty());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  out.close();

  // The fallback is observable: ckpt.fallback_generations counts each
  // generation LoadNewest had to skip past.
  obs::Configure(obs::TelemetryConfig{.enabled = true});
  obs::Counter& fallbacks =
      obs::MetricsRegistry::Default().GetCounter("ckpt.fallback_generations");
  const int64_t fallbacks_before = fallbacks.Value();
  const auto loaded = ckpt::LoadNewest(dir_, "search");
  obs::Configure(obs::TelemetryConfig{.enabled = false});
  EXPECT_EQ(fallbacks.Value(), fallbacks_before + 1);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->generation, newest - 1);
  Evolution resumed_evo(evaluator, cfg);
  resumed_evo.ResumeFrom(ckpt::DecodeSearchSnapshot(loaded->payload));
  ExpectIdentical(reference, resumed_evo.Run(init));
}

TEST_F(CkptResumeFileTest, PublishRetryIsCountedPerFailedPublish) {
  // A failed publish is retried once before degrading to a warning; each
  // retry shows up on the writer accessor and the ckpt.publish_retries
  // counter. With a persistent EIO fault both the attempt and its retry
  // fail, so one publish -> one retry -> one write failure.
  obs::Configure(obs::TelemetryConfig{.enabled = true});
  obs::Counter& retries =
      obs::MetricsRegistry::Default().GetCounter("ckpt.publish_retries");
  const int64_t retries_before = retries.Value();

  fault::SetForTesting(fault::Kind::kEio);
  ckpt::WriterOptions options;
  options.background = false;
  ckpt::CheckpointWriter writer(dir_, "search", options);
  EXPECT_FALSE(writer.WriteBlob(ckpt::kSearchSnapshotKind, "doomed"));
  EXPECT_EQ(writer.publish_retries(), 1);
  EXPECT_EQ(writer.write_failures(), 1);
  EXPECT_EQ(retries.Value(), retries_before + 1);

  EXPECT_FALSE(writer.WriteBlob(ckpt::kSearchSnapshotKind, "doomed again"));
  EXPECT_EQ(writer.publish_retries(), 2);
  EXPECT_EQ(retries.Value(), retries_before + 2);

  // Once the fault clears, the next publish lands without further retries.
  fault::SetForTesting(fault::Kind::kNone);
  EXPECT_TRUE(writer.WriteBlob(ckpt::kSearchSnapshotKind, "healed"));
  EXPECT_EQ(writer.publish_retries(), 2);
  EXPECT_EQ(retries.Value(), retries_before + 2);
  obs::Configure(obs::TelemetryConfig{.enabled = false});

  const auto loaded = ckpt::LoadNewest(dir_, "search");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->payload, "healed");
}

}  // namespace
}  // namespace alphaevolve::core

#include "core/program.h"

#include <gtest/gtest.h>

#include "core/generators.h"
#include "core/mutator.h"
#include "util/check.h"
#include "util/rng.h"

namespace alphaevolve::core {
namespace {

TEST(ProgramTest, ComponentAccessors) {
  AlphaProgram prog = MakeNoOpAlpha();
  EXPECT_EQ(&prog.component(ComponentId::kSetup), &prog.setup);
  EXPECT_EQ(&prog.component(ComponentId::kPredict), &prog.predict);
  EXPECT_EQ(&prog.component(ComponentId::kUpdate), &prog.update);
  EXPECT_EQ(prog.TotalInstructions(), 3);
}

TEST(ProgramTest, ValidateAcceptsBuiltinAlphas) {
  const ProgramLimits limits;
  Rng rng(1);
  Mutator mutator{MutatorConfig{}};
  for (InitKind kind : {InitKind::kExpert, InitKind::kNoOp, InitKind::kRandom,
                        InitKind::kNeuralNet}) {
    const AlphaProgram prog = MakeInitialAlpha(kind, mutator, rng);
    EXPECT_EQ(prog.Validate(limits), "") << InitKindName(kind);
  }
}

TEST(ProgramTest, ValidateRejectsTooManyInstructions) {
  ProgramLimits limits;
  limits.max_instructions[1] = 2;
  AlphaProgram prog = MakeNoOpAlpha();
  prog.predict.resize(3, prog.predict[0]);
  EXPECT_NE(prog.Validate(limits), "");
}

TEST(ProgramTest, ValidateRejectsEmptyComponent) {
  AlphaProgram prog = MakeNoOpAlpha();
  prog.update.clear();
  EXPECT_NE(prog.Validate(ProgramLimits{}), "");
}

TEST(ProgramTest, ValidateRejectsOutOfRangeAddress) {
  AlphaProgram prog = MakeNoOpAlpha();
  Instruction bad;
  bad.op = Op::kScalarAdd;
  bad.out = 1;
  bad.in1 = 15;  // only 10 scalars
  bad.in2 = 0;
  prog.predict.push_back(bad);
  EXPECT_NE(prog.Validate(ProgramLimits{}), "");
}

TEST(ProgramTest, ValidateRejectsRelationOpWhenDisabled) {
  AlphaProgram prog = MakeNoOpAlpha();
  Instruction rank;
  rank.op = Op::kRank;
  rank.out = 1;
  rank.in1 = 2;
  prog.predict.push_back(rank);
  EXPECT_EQ(prog.Validate(ProgramLimits{}, /*allow_relation_ops=*/true), "");
  EXPECT_NE(prog.Validate(ProgramLimits{}, /*allow_relation_ops=*/false), "");
}

TEST(ProgramTest, ValidateRejectsExtractionInSetup) {
  AlphaProgram prog = MakeNoOpAlpha();
  Instruction get;
  get.op = Op::kGetScalar;
  get.out = 2;
  prog.setup.push_back(get);
  EXPECT_NE(prog.Validate(ProgramLimits{}), "");
}

TEST(ProgramTest, ToStringHasFigure2Shape) {
  const AlphaProgram prog = MakeExpertAlpha(13);
  const std::string text = prog.ToString();
  EXPECT_NE(text.find("def Setup():"), std::string::npos);
  EXPECT_NE(text.find("def Predict():"), std::string::npos);
  EXPECT_NE(text.find("def Update():"), std::string::npos);
  EXPECT_NE(text.find("s1 = s_div(s5, s9)"), std::string::npos);
}

TEST(ProgramTest, RoundTripExpertAlpha) {
  const AlphaProgram prog = MakeExpertAlpha(13);
  EXPECT_EQ(AlphaProgram::FromString(prog.ToString()), prog);
}

TEST(ProgramTest, RoundTripNeuralNetAlpha) {
  const AlphaProgram prog = MakeNeuralNetAlpha(13);
  EXPECT_EQ(AlphaProgram::FromString(prog.ToString()), prog);
}

TEST(ProgramTest, RoundTripRandomPrograms) {
  Rng rng(7);
  const Mutator mutator{MutatorConfig{}};
  for (int i = 0; i < 25; ++i) {
    const AlphaProgram prog = mutator.RandomProgram(rng);
    EXPECT_EQ(AlphaProgram::FromString(prog.ToString()), prog)
        << prog.ToString();
  }
}

TEST(ProgramTest, FromStringRejectsInstructionBeforeHeader) {
  EXPECT_THROW(AlphaProgram::FromString("s1 = s_add(s2, s3)"), CheckError);
}

TEST(ProgramLimitsTest, NumAddressesPerType) {
  const ProgramLimits limits;
  EXPECT_EQ(limits.NumAddresses(OperandType::kScalar), 10);
  EXPECT_EQ(limits.NumAddresses(OperandType::kVector), 16);
  EXPECT_EQ(limits.NumAddresses(OperandType::kMatrix), 4);
  EXPECT_EQ(limits.NumAddresses(OperandType::kNone), 0);
}

}  // namespace
}  // namespace alphaevolve::core

// The evaluation watchdog (EvaluatorConfig::eval_budget_seconds): an
// over-budget candidate must come back invalid with timed_out set and be
// counted in EvolutionStats::eval_timeouts — the search keeps going instead
// of hanging on a pathological program. A budget generous enough to never
// fire must leave results bit-identical to the disarmed evaluator.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "core/evaluator_pool.h"
#include "core/evolution.h"
#include "core/generators.h"
#include "market/simulator.h"

namespace alphaevolve::core {
namespace {

class WatchdogTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    market::MarketConfig mc = market::MarketConfig::BenchScale();
    mc.num_stocks = 24;
    mc.num_days = 220;
    mc.seed = 13;
    dataset_ = new market::Dataset(
        market::Dataset::Simulate(mc, market::DatasetConfig{}));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static EvolutionConfig BaseConfig() {
    EvolutionConfig cfg;
    cfg.max_candidates = 200;
    cfg.seed = 7;
    cfg.trajectory_stride = 25;
    cfg.batch_size = 8;
    return cfg;
  }

  static market::Dataset* dataset_;
};

market::Dataset* WatchdogTest::dataset_ = nullptr;

TEST_F(WatchdogTest, SingleEvaluationTimesOutAsInvalid) {
  EvaluatorConfig config;
  config.eval_budget_seconds = 1e-9;  // nothing finishes in a nanosecond
  Evaluator evaluator(*dataset_, config);
  const AlphaMetrics m =
      evaluator.Evaluate(MakeExpertAlpha(dataset_->window()), /*seed=*/1);
  EXPECT_FALSE(m.valid);
  EXPECT_TRUE(m.timed_out);
}

TEST_F(WatchdogTest, PathologicalBudgetCountsEveryEvaluationAndTerminates) {
  // With an impossible budget every full evaluation is abandoned; the
  // search must still terminate at its candidate bound, report no alpha,
  // and account for each timeout.
  EvaluatorConfig eval_config;
  eval_config.eval_budget_seconds = 1e-9;
  Evaluator evaluator(*dataset_, eval_config);
  EvolutionConfig cfg = BaseConfig();
  cfg.pipeline_depth = 0;
  Evolution evo(evaluator, cfg);
  const EvolutionResult r = evo.Run(MakeExpertAlpha(dataset_->window()));
  EXPECT_FALSE(r.has_alpha);
  EXPECT_GT(r.stats.eval_timeouts, 0);
  EXPECT_EQ(r.stats.eval_timeouts, r.stats.evaluated);
  EXPECT_EQ(r.stats.candidates, cfg.max_candidates);
}

TEST_F(WatchdogTest, PooledSearchSurvivesTimeouts) {
  // The watchdog must not wedge the batched pool drivers either.
  EvaluatorConfig eval_config;
  eval_config.eval_budget_seconds = 1e-9;
  EvolutionConfig cfg = BaseConfig();
  cfg.pipeline_depth = 2;
  EvaluatorPool pool(*dataset_, eval_config, 4);
  Evolution evo(pool, cfg);
  const EvolutionResult r = evo.Run(MakeExpertAlpha(dataset_->window()));
  EXPECT_FALSE(r.has_alpha);
  EXPECT_GT(r.stats.eval_timeouts, 0);
  EXPECT_EQ(r.stats.candidates, cfg.max_candidates);
}

TEST_F(WatchdogTest, GenerousBudgetIsBitIdenticalToDisarmed) {
  EvolutionConfig cfg = BaseConfig();
  cfg.pipeline_depth = 0;
  const AlphaProgram init = MakeExpertAlpha(dataset_->window());

  Evaluator disarmed(*dataset_, EvaluatorConfig{});
  Evolution reference_evo(disarmed, cfg);
  const EvolutionResult reference = reference_evo.Run(init);
  ASSERT_TRUE(reference.has_alpha);
  EXPECT_EQ(reference.stats.eval_timeouts, 0);

  EvaluatorConfig armed_config;
  armed_config.eval_budget_seconds = 1e9;  // armed, but can never fire
  Evaluator armed(*dataset_, armed_config);
  Evolution armed_evo(armed, cfg);
  const EvolutionResult r = armed_evo.Run(init);
  ASSERT_EQ(r.has_alpha, reference.has_alpha);
  EXPECT_EQ(r.best, reference.best);
  EXPECT_DOUBLE_EQ(r.best_fitness, reference.best_fitness);
  EXPECT_EQ(r.stats.candidates, reference.stats.candidates);
  EXPECT_EQ(r.stats.evaluated, reference.stats.evaluated);
  EXPECT_EQ(r.stats.cache_hits, reference.stats.cache_hits);
  EXPECT_EQ(r.stats.eval_timeouts, 0);
  ASSERT_EQ(r.trajectory.size(), reference.trajectory.size());
  for (size_t i = 0; i < r.trajectory.size(); ++i) {
    EXPECT_EQ(r.trajectory[i].first, reference.trajectory[i].first);
    EXPECT_DOUBLE_EQ(r.trajectory[i].second, reference.trajectory[i].second);
  }
}

}  // namespace
}  // namespace alphaevolve::core

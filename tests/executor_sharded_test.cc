// Parity and determinism guarantees of the task-sharded executor: sharded
// execution must be bit-identical to serial execution at every thread count
// and shard size (including for random-init ops, via the counter-based RNG),
// and relation ops must keep their cross-task group semantics when groups
// run in parallel.

#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "core/executor.h"
#include "core/generators.h"
#include "core/mutator.h"
#include "market/simulator.h"
#include "test_util.h"

namespace alphaevolve::core {
namespace {

using market::Split;

Instruction I(Op op, int out, int in1 = 0, int in2 = 0) {
  Instruction ins;
  ins.op = op;
  ins.out = static_cast<uint8_t>(out);
  ins.in1 = static_cast<uint8_t>(in1);
  ins.in2 = static_cast<uint8_t>(in2);
  return ins;
}

Instruction RandomInit(Op op, int out, double imm0, double imm1) {
  Instruction ins;
  ins.op = op;
  ins.out = static_cast<uint8_t>(out);
  ins.imm0 = imm0;
  ins.imm1 = imm1;
  return ins;
}

/// An alpha exercising every execution path: element-wise segments, random
/// init, ts-rank history, and all three relation ops splitting segments.
AlphaProgram MakeStressAlpha(int window) {
  AlphaProgram prog = MakeExpertAlpha(window);
  prog.setup.push_back(RandomInit(Op::kMatrixGaussian, 2, 0.0, 0.1));
  prog.setup.push_back(RandomInit(Op::kVectorUniform, 2, -0.5, 0.5));
  Instruction rank = I(Op::kRank, 6, kPredictionScalar);
  prog.predict.push_back(rank);
  Instruction rrank = I(Op::kRelationRank, 7, 6);
  rrank.idx0 = 1;  // industry
  prog.predict.push_back(rrank);
  Instruction demean = I(Op::kRelationDemean, 5, 7);
  demean.idx0 = 0;  // sector
  prog.predict.push_back(demean);
  Instruction ts = I(Op::kTsRank, 4, 5);
  ts.idx0 = 6;
  prog.predict.push_back(ts);
  prog.predict.push_back(I(Op::kScalarAdd, kPredictionScalar, 4, 5));
  return prog;
}

void ExpectBitIdentical(const ExecutionResult& a, const ExecutionResult& b) {
  ASSERT_EQ(a.valid, b.valid);
  // operator== on vector<double> is bitwise equality per element.
  EXPECT_EQ(a.valid_preds, b.valid_preds);
  EXPECT_EQ(a.test_preds, b.test_preds);
}

class ExecutorShardedTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // A simulated universe with real sector/industry structure (several
    // groups of uneven size), large enough for many shard layouts.
    market::MarketConfig mc = market::MarketConfig::BenchScale();
    mc.num_stocks = 40;
    mc.num_days = 160;
    mc.seed = 23;
    dataset_ = new market::Dataset(
        market::Dataset::Simulate(mc, market::DatasetConfig{}));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static market::Dataset* dataset_;
};

market::Dataset* ExecutorShardedTest::dataset_ = nullptr;

TEST_F(ExecutorShardedTest, BitParityAtEveryThreadCount) {
  const AlphaProgram prog = MakeStressAlpha(dataset_->window());
  Executor serial(*dataset_, ExecutorConfig{});
  const ExecutionResult reference = serial.Run(prog, 77);
  ASSERT_TRUE(reference.valid);

  for (const int threads : {2, 3, 4, 8}) {
    ExecutorConfig cfg;
    cfg.intra_candidate_threads = threads;
    cfg.group_parallel_min_tasks = 1;  // force the concurrent group path
    Executor sharded(*dataset_, cfg);
    EXPECT_GT(sharded.num_shards(), 1);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectBitIdentical(sharded.Run(prog, 77), reference);
  }
}

TEST_F(ExecutorShardedTest, BitParityAcrossShardSizes) {
  const AlphaProgram prog = MakeStressAlpha(dataset_->window());
  Executor serial(*dataset_, ExecutorConfig{});
  const ExecutionResult reference = serial.Run(prog, 5);

  // Odd shard sizes that do not divide the task count, including
  // one-task-per-shard.
  for (const int shard_size : {1, 7, 17, 1000}) {
    ExecutorConfig cfg;
    cfg.intra_candidate_threads = 4;
    cfg.shard_size = shard_size;
    cfg.group_parallel_min_tasks = 1;
    Executor sharded(*dataset_, cfg);
    SCOPED_TRACE("shard_size=" + std::to_string(shard_size));
    ExpectBitIdentical(sharded.Run(prog, 5), reference);
  }
}

TEST_F(ExecutorShardedTest, MutatedProgramsStayBitIdentical) {
  // Fuzz across evolved program shapes: whatever the mutator produces must
  // execute identically sharded and serial (including invalid runs).
  Mutator mutator{MutatorConfig{}};
  Rng rng(3);
  AlphaProgram prog = MakeStressAlpha(dataset_->window());
  Executor serial(*dataset_, ExecutorConfig{});
  ExecutorConfig cfg;
  cfg.intra_candidate_threads = 4;
  cfg.shard_size = 11;
  cfg.group_parallel_min_tasks = 1;
  Executor sharded(*dataset_, cfg);
  for (int i = 0; i < 15; ++i) {
    prog = mutator.Mutate(prog, rng);
    SCOPED_TRACE("mutation " + std::to_string(i));
    ExpectBitIdentical(sharded.Run(prog, 1000 + i), serial.Run(prog, 1000 + i));
  }
}

TEST_F(ExecutorShardedTest, CounterRngDeterministicAcrossThreadCounts) {
  // Pure random program: same seed must give the same ExecutionResult for 1
  // and 8 threads; different seeds must differ.
  AlphaProgram prog;
  prog.setup.push_back(RandomInit(Op::kMatrixGaussian, 1, 0.0, 1.0));
  prog.predict.push_back(RandomInit(Op::kVectorUniform, 2, -1.0, 1.0));
  prog.predict.push_back(I(Op::kVectorMean, 3, 2));
  prog.predict.push_back(I(Op::kMatrixMean, 4, 1));
  prog.predict.push_back(I(Op::kScalarAdd, kPredictionScalar, 3, 4));
  prog.update.push_back(I(Op::kNoOp, 0));

  Executor serial(*dataset_, ExecutorConfig{});
  ExecutorConfig cfg;
  cfg.intra_candidate_threads = 8;
  Executor sharded(*dataset_, cfg);

  const ExecutionResult r1 = serial.Run(prog, 99);
  const ExecutionResult r8 = sharded.Run(prog, 99);
  ASSERT_TRUE(r1.valid && r8.valid);
  ExpectBitIdentical(r8, r1);

  const ExecutionResult other_seed = sharded.Run(prog, 100);
  ASSERT_TRUE(other_seed.valid);
  EXPECT_NE(other_seed.valid_preds, r1.valid_preds);
}

TEST_F(ExecutorShardedTest, RelationDemeanZeroSumWithinSectorWhenSharded) {
  const int w = dataset_->window();
  AlphaProgram prog;
  prog.setup.push_back(I(Op::kNoOp, 0));
  Instruction get;
  get.op = Op::kGetScalar;
  get.out = 3;
  get.idx0 = 0;
  get.idx1 = static_cast<uint8_t>(w - 1);
  prog.predict.push_back(get);
  Instruction demean = I(Op::kRelationDemean, kPredictionScalar, 3);
  demean.idx0 = 0;  // sector
  prog.predict.push_back(demean);
  prog.update.push_back(I(Op::kNoOp, 0));

  ExecutorConfig cfg;
  cfg.intra_candidate_threads = 4;
  cfg.group_parallel_min_tasks = 1;
  Executor exec(*dataset_, cfg);
  const ExecutionResult r = exec.Run(prog, 1);
  ASSERT_TRUE(r.valid);
  for (const auto& row : r.valid_preds) {
    for (int g = 0; g < dataset_->num_sector_groups(); ++g) {
      double sum = 0.0;
      for (int k : dataset_->sector_tasks(g)) {
        sum += row[static_cast<size_t>(k)];
      }
      EXPECT_NEAR(sum, 0.0, 1e-9);
    }
  }
}

TEST_F(ExecutorShardedTest, RelationRankGroupBoundsWhenSharded) {
  const int w = dataset_->window();
  AlphaProgram prog;
  prog.setup.push_back(I(Op::kNoOp, 0));
  Instruction get;
  get.op = Op::kGetScalar;
  get.out = 3;
  get.idx0 = 0;
  get.idx1 = static_cast<uint8_t>(w - 1);
  prog.predict.push_back(get);
  Instruction rr = I(Op::kRelationRank, kPredictionScalar, 3);
  rr.idx0 = 1;  // industry
  prog.predict.push_back(rr);
  prog.update.push_back(I(Op::kNoOp, 0));

  ExecutorConfig cfg;
  cfg.intra_candidate_threads = 4;
  cfg.shard_size = 3;
  cfg.group_parallel_min_tasks = 1;
  Executor exec(*dataset_, cfg);
  const ExecutionResult r = exec.Run(prog, 1);
  ASSERT_TRUE(r.valid);
  for (const auto& row : r.valid_preds) {
    for (double p : row) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
    for (int g = 0; g < dataset_->num_industry_groups(); ++g) {
      const auto& members = dataset_->industry_tasks(g);
      if (members.size() < 2) continue;
      double lo = 2.0, hi = -1.0;
      for (int k : members) {
        lo = std::min(lo, row[static_cast<size_t>(k)]);
        hi = std::max(hi, row[static_cast<size_t>(k)]);
      }
      // Distinct values in a group imply its min ranks 0 and its max 1.
      if (lo != hi) {
        EXPECT_DOUBLE_EQ(lo, 0.0);
        EXPECT_DOUBLE_EQ(hi, 1.0);
      }
    }
  }
}

TEST_F(ExecutorShardedTest, EnvThreadCountCannotChangeResults) {
  // CI runs ctest under AE_BENCH_THREADS=1 and =4; this test turns that
  // into a thread-invariance regression check on the executor itself.
  int env_threads = 4;
  if (const char* env = std::getenv("AE_BENCH_THREADS")) {
    env_threads = std::max(1, std::atoi(env));
  }
  const AlphaProgram prog = MakeStressAlpha(dataset_->window());
  Executor serial(*dataset_, ExecutorConfig{});
  ExecutorConfig cfg;
  cfg.intra_candidate_threads = env_threads;
  cfg.group_parallel_min_tasks = 1;
  Executor sharded(*dataset_, cfg);
  ExpectBitIdentical(sharded.Run(prog, 42), serial.Run(prog, 42));
}

}  // namespace
}  // namespace alphaevolve::core

// Runtime kernel-variant selection: name round-trips, CPUID detection,
// table completeness for every compiled variant, and the resolution order
// (config > AE_KERNEL_VARIANT env > auto) including the scalar fallback for
// variants this host cannot run. Value-level parity between the tables is
// fused_parity_test's job; this suite covers the plumbing.

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dispatch.h"
#include "core/kernel_table.h"

namespace alphaevolve::core {
namespace {

TEST(DispatchTest, VariantNamesRoundTrip) {
  for (const KernelVariant v :
       {KernelVariant::kScalar, KernelVariant::kAvx2, KernelVariant::kAvx512,
        KernelVariant::kNeon}) {
    KernelVariant parsed;
    ASSERT_TRUE(ParseKernelVariant(KernelVariantName(v), &parsed))
        << KernelVariantName(v);
    EXPECT_EQ(parsed, v);
  }
  KernelVariant parsed;
  EXPECT_FALSE(ParseKernelVariant("", &parsed));
  EXPECT_FALSE(ParseKernelVariant("auto", &parsed));  // handled by caller
  EXPECT_FALSE(ParseKernelVariant("sse9", &parsed));
}

TEST(DispatchTest, ScalarAlwaysCompiledAndSupported) {
  EXPECT_TRUE(KernelVariantSupported(KernelVariant::kScalar));
  const KernelTable* scalar = GetKernelTable(KernelVariant::kScalar);
  ASSERT_NE(scalar, nullptr);
  EXPECT_EQ(scalar->variant, KernelVariant::kScalar);
  EXPECT_STREQ(scalar->name, "scalar");
  const auto compiled = CompiledKernelVariants();
  EXPECT_NE(std::find(compiled.begin(), compiled.end(),
                      KernelVariant::kScalar),
            compiled.end());
  const auto runnable = RunnableKernelVariants();
  EXPECT_NE(std::find(runnable.begin(), runnable.end(),
                      KernelVariant::kScalar),
            runnable.end());
}

TEST(DispatchTest, CompiledTablesAreComplete) {
  // A table slot left null would only crash when a fuzzed program first hits
  // that op under that variant; refuse here instead, for every variant the
  // build produced (runnable on this host or not).
  for (const KernelVariant v : CompiledKernelVariants()) {
    SCOPED_TRACE(KernelVariantName(v));
    const KernelTable* table = GetKernelTable(v);
    ASSERT_NE(table, nullptr);
    EXPECT_EQ(table->variant, v);
    EXPECT_STREQ(table->name, KernelVariantName(v));
    for (int i = 0; i < static_cast<int>(MicroKernelId::kNumMicroKernels);
         ++i) {
      EXPECT_NE(table->micro[i], nullptr) << "micro kernel id " << i;
    }
    EXPECT_NE(table->matmul, nullptr);
    EXPECT_NE(table->matvec, nullptr);
    EXPECT_NE(table->transpose, nullptr);
    EXPECT_NE(table->fill_input, nullptr);
    EXPECT_NE(table->nn_matvec, nullptr);
    EXPECT_NE(table->nn_mattvec, nullptr);
    EXPECT_NE(table->nn_addouter, nullptr);
  }
}

TEST(DispatchTest, DetectReturnsRunnableVariant) {
  const KernelVariant detected = DetectKernelVariant();
  const auto runnable = RunnableKernelVariants();
  EXPECT_NE(std::find(runnable.begin(), runnable.end(), detected),
            runnable.end());
  EXPECT_TRUE(KernelVariantSupported(detected));
  EXPECT_NE(GetKernelTable(detected), nullptr);
}

TEST(DispatchTest, RunnableIsSubsetOfCompiled) {
  const auto compiled = CompiledKernelVariants();
  for (const KernelVariant v : RunnableKernelVariants()) {
    EXPECT_NE(std::find(compiled.begin(), compiled.end(), v), compiled.end())
        << KernelVariantName(v);
    EXPECT_TRUE(KernelVariantSupported(v)) << KernelVariantName(v);
  }
}

TEST(DispatchTest, ResolutionOrderConfigThenEnvThenAuto) {
  // Explicit request wins regardless of the environment.
  ASSERT_EQ(setenv("AE_KERNEL_VARIANT", "scalar", /*overwrite=*/1), 0);
  for (const KernelVariant v : RunnableKernelVariants()) {
    const KernelTable& table = ResolveKernelTable(KernelVariantName(v));
    EXPECT_EQ(table.variant, v) << KernelVariantName(v);
  }
  // Empty request defers to the env.
  EXPECT_EQ(ResolveKernelTable("").variant, KernelVariant::kScalar);
  // "auto" (explicit or via env) means detect.
  ASSERT_EQ(setenv("AE_KERNEL_VARIANT", "auto", 1), 0);
  EXPECT_EQ(ResolveKernelTable("").variant, DetectKernelVariant());
  EXPECT_EQ(ResolveKernelTable("auto").variant, DetectKernelVariant());
  ASSERT_EQ(unsetenv("AE_KERNEL_VARIANT"), 0);
  EXPECT_EQ(ResolveKernelTable("").variant, DetectKernelVariant());
}

TEST(DispatchTest, UnsupportedRequestFallsBackToScalar) {
  // Find a variant that is not runnable here (compiled out or CPU lacks
  // it); requesting it must yield the scalar table, not a crash. On a host
  // that can run everything, NEON is still compiled out on x86 and AVX-512
  // on AArch64, so such a variant always exists.
  const auto runnable = RunnableKernelVariants();
  for (const KernelVariant v :
       {KernelVariant::kAvx2, KernelVariant::kAvx512, KernelVariant::kNeon}) {
    if (std::find(runnable.begin(), runnable.end(), v) != runnable.end()) {
      continue;
    }
    const KernelTable& table = ResolveKernelTable(KernelVariantName(v));
    EXPECT_EQ(table.variant, KernelVariant::kScalar) << KernelVariantName(v);
  }
}

}  // namespace
}  // namespace alphaevolve::core

#include "core/evolution.h"

#include <chrono>
#include <cmath>

#include <gtest/gtest.h>

#include "core/generators.h"
#include "core/mining.h"
#include "eval/metrics.h"
#include "market/simulator.h"

namespace alphaevolve::core {
namespace {

/// Shared small simulated market with an embedded learnable signal.
class EvolutionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    market::MarketConfig mc = market::MarketConfig::BenchScale();
    mc.num_stocks = 24;
    mc.num_days = 220;
    mc.seed = 13;
    dataset_ = new market::Dataset(
        market::Dataset::Simulate(mc, market::DatasetConfig{}));
    evaluator_ = new Evaluator(*dataset_, EvaluatorConfig{});
  }
  static void TearDownTestSuite() {
    delete evaluator_;
    delete dataset_;
  }
  static market::Dataset* dataset_;
  static Evaluator* evaluator_;
};

market::Dataset* EvolutionTest::dataset_ = nullptr;
Evaluator* EvolutionTest::evaluator_ = nullptr;

TEST_F(EvolutionTest, EvaluatorScoresExpertAlpha) {
  const AlphaMetrics m =
      evaluator_->Evaluate(MakeExpertAlpha(13), /*seed=*/1);
  ASSERT_TRUE(m.valid);
  EXPECT_TRUE(std::isfinite(m.ic_valid));
  EXPECT_TRUE(std::isfinite(m.sharpe_test));
  EXPECT_EQ(m.valid_portfolio_returns.size(),
            dataset_->dates(market::Split::kValid).size());
  EXPECT_EQ(m.test_portfolio_returns.size(),
            dataset_->dates(market::Split::kTest).size());
}

TEST_F(EvolutionTest, EvaluatorMarksDivergentProgramInvalid) {
  AlphaProgram prog = MakeNoOpAlpha();
  Instruction c;
  c.op = Op::kScalarConst;
  c.out = 2;
  c.imm0 = 0.0;
  Instruction recip;
  recip.op = Op::kScalarReciprocal;
  recip.out = kPredictionScalar;
  recip.in1 = 2;
  prog.predict = {c, recip};
  const AlphaMetrics m = evaluator_->Evaluate(prog, 1);
  EXPECT_FALSE(m.valid);
  EXPECT_EQ(m.ic_valid, kInvalidFitness);
}

TEST_F(EvolutionTest, SearchImprovesOnInitialAlpha) {
  const AlphaProgram init = MakeExpertAlpha(13);
  const double init_ic = evaluator_->Evaluate(init, 1).ic_valid;

  EvolutionConfig cfg;
  cfg.max_candidates = 800;
  cfg.seed = 3;
  Evolution evo(*evaluator_, cfg);
  const EvolutionResult r = evo.Run(init);
  ASSERT_TRUE(r.has_alpha);
  EXPECT_GT(r.best_fitness, init_ic);
  EXPECT_GT(r.best_fitness, 0.0);
}

TEST_F(EvolutionTest, StatsPartitionCandidates) {
  EvolutionConfig cfg;
  cfg.max_candidates = 500;
  cfg.seed = 4;
  Evolution evo(*evaluator_, cfg);
  const EvolutionResult r = evo.Run(MakeNoOpAlpha());
  EXPECT_EQ(r.stats.candidates, 500);
  EXPECT_EQ(r.stats.candidates, r.stats.evaluated + r.stats.pruned_redundant +
                                    r.stats.cache_hits);
  EXPECT_GT(r.stats.pruned_redundant, 0);  // no-op children are redundant
}

TEST_F(EvolutionTest, DeterministicGivenSeed) {
  EvolutionConfig cfg;
  cfg.max_candidates = 300;
  cfg.seed = 5;
  Evolution a(*evaluator_, cfg), b(*evaluator_, cfg);
  const EvolutionResult ra = a.Run(MakeExpertAlpha(13));
  const EvolutionResult rb = b.Run(MakeExpertAlpha(13));
  ASSERT_EQ(ra.has_alpha, rb.has_alpha);
  EXPECT_EQ(ra.best, rb.best);
  EXPECT_DOUBLE_EQ(ra.best_fitness, rb.best_fitness);
}

TEST_F(EvolutionTest, TrajectoryIsMonotoneNonDecreasing) {
  EvolutionConfig cfg;
  cfg.max_candidates = 600;
  cfg.trajectory_stride = 25;
  cfg.seed = 6;
  Evolution evo(*evaluator_, cfg);
  const EvolutionResult r = evo.Run(MakeExpertAlpha(13));
  ASSERT_GT(r.trajectory.size(), 3u);
  for (size_t i = 1; i < r.trajectory.size(); ++i) {
    EXPECT_LE(r.trajectory[i - 1].second, r.trajectory[i].second);
    EXPECT_LT(r.trajectory[i - 1].first, r.trajectory[i].first);
  }
}

TEST_F(EvolutionTest, TimeBudgetStopsSearch) {
  EvolutionConfig cfg;
  cfg.max_candidates = 0;  // unbounded count
  cfg.time_budget_seconds = 0.2;
  cfg.seed = 7;
  Evolution evo(*evaluator_, cfg);
  const auto start = std::chrono::steady_clock::now();
  evo.Run(MakeExpertAlpha(13));
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(secs, 5.0);
}

TEST_F(EvolutionTest, CutoffSuppressesCorrelatedCandidates) {
  // Round 0: mine the best alpha.
  EvolutionConfig cfg;
  cfg.max_candidates = 600;
  cfg.seed = 8;
  WeaklyCorrelatedMiner miner(*evaluator_, cfg);
  const EvolutionResult r0 = miner.RunSearch(MakeExpertAlpha(13), 8);
  ASSERT_TRUE(r0.has_alpha);
  miner.Accept("round0", r0.best, r0.best_metrics);

  // Round 1 must discard some candidates for correlation and, if it finds
  // an alpha, the accepted-set correlation must respect the cutoff.
  const EvolutionResult r1 = miner.RunSearch(MakeExpertAlpha(13), 9);
  EXPECT_GT(r1.stats.cutoff_discarded, 0);
  if (r1.has_alpha) {
    const double corr = miner.CorrelationWithAccepted(r1.best_metrics);
    EXPECT_LE(std::abs(corr), cfg.correlation_cutoff + 1e-9);
  }
}

TEST_F(EvolutionTest, FunctionalFingerprintModeAlsoSearches) {
  EvolutionConfig cfg;
  cfg.max_candidates = 300;
  cfg.use_pruning = false;  // AutoML-Zero style probe fingerprint
  cfg.seed = 10;
  Evolution evo(*evaluator_, cfg);
  const EvolutionResult r = evo.Run(MakeExpertAlpha(13));
  EXPECT_EQ(r.stats.pruned_redundant, 0);
  EXPECT_GT(r.stats.cache_hits, 0);
  EXPECT_TRUE(r.has_alpha);
}

TEST_F(EvolutionTest, MinerCorrelationWithAcceptedIsNanWhenEmpty) {
  EvolutionConfig cfg;
  WeaklyCorrelatedMiner miner(*evaluator_, cfg);
  AlphaMetrics m;
  EXPECT_TRUE(std::isnan(miner.CorrelationWithAccepted(m)));
}

}  // namespace
}  // namespace alphaevolve::core

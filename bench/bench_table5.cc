// Table 5 — "Performance comparisons with the complex machine learning
// alphas": the evolved alpha_AE_D_0 / alpha_AE_NN_1 vs Rank_LSTM (grid
// searched) and RSR (graph-relation variant), means ± std over 5 seeds.
// Expected shape (paper): both evolved alphas beat both neural baselines;
// RSR's imposed static relational knowledge does not help on the noisy
// market (its IC is not above Rank_LSTM's); the neural baselines carry
// visible seed variance.

#include <iostream>

#include "common.h"
#include "core/evaluator.h"
#include "nn/trainer.h"
#include "util/table.h"

using namespace aebench;

int main() {
  const BenchOptions opt = BenchOptions::FromEnv();
  const market::Dataset dataset = MakeBenchDataset(opt);
  PrintBanner("Table 5: vs complex machine learning alphas", opt, dataset);

  core::Evaluator evaluator(dataset, core::EvaluatorConfig{});

  // alpha_AE_D_0: expert-initialized search (round 0, no cutoff).
  core::WeaklyCorrelatedMiner miner(evaluator, MakeEvolutionConfig(opt, 1));
  const core::EvolutionResult ae_d =
      RunRoundFrom(miner, core::MakeExpertAlpha(dataset.window()), 100);
  if (ae_d.has_alpha) {
    miner.Accept("alpha_AE_D_0", ae_d.best, ae_d.best_metrics);
  }
  // alpha_AE_NN_1: NN-initialized, cutoff vs alpha_AE_D_0 (as in the paper,
  // it is the weakly correlated runner-up produced with relational ops).
  const core::EvolutionResult ae_nn =
      RunRoundFrom(miner, core::MakeNeuralNetAlpha(dataset.window()), 101);

  // Rank_LSTM grid search + 5 seeds; RSR reuses the winning config.
  alphaevolve::nn::ExperimentOptions nn_opt;
  nn_opt.epochs = 3;
  if (opt.full) nn_opt = alphaevolve::nn::ExperimentOptions::PaperGrid();
  const auto rank_lstm =
      alphaevolve::nn::RunRankLstmExperiment(dataset, nn_opt);
  const auto rsr = alphaevolve::nn::RunRsrExperiment(
      dataset, rank_lstm.best_config, nn_opt);

  alphaevolve::TablePrinter table(
      {"Alpha", "Sharpe ratio", "IC", "Sharpe (test)", "IC (test)"});
  auto add_ae = [&](const char* name, const core::EvolutionResult& r) {
    if (r.has_alpha) {
      table.AddRow({name, Num(r.best_metrics.sharpe_valid),
                    Num(r.best_metrics.ic_valid),
                    Num(r.best_metrics.sharpe_test),
                    Num(r.best_metrics.ic_test)});
    } else {
      table.AddRow({name, "NA", "NA", "NA", "NA"});
    }
  };
  add_ae("alpha_AE_D_0", ae_d);
  add_ae("alpha_AE_NN_1", ae_nn);
  table.AddRow({"Rank_LSTM",
                Num(rank_lstm.valid_sharpe_mean) + "+/-" +
                    Num(rank_lstm.valid_sharpe_std),
                Num(rank_lstm.valid_ic_mean) + "+/-" +
                    Num(rank_lstm.valid_ic_std),
                Num(rank_lstm.sharpe_mean) + "+/-" + Num(rank_lstm.sharpe_std),
                Num(rank_lstm.ic_mean) + "+/-" + Num(rank_lstm.ic_std)});
  table.AddRow({"RSR",
                Num(rsr.valid_sharpe_mean) + "+/-" + Num(rsr.valid_sharpe_std),
                Num(rsr.valid_ic_mean) + "+/-" + Num(rsr.valid_ic_std),
                Num(rsr.sharpe_mean) + "+/-" + Num(rsr.sharpe_std),
                Num(rsr.ic_mean) + "+/-" + Num(rsr.ic_std)});
  table.Print(std::cout);

  std::printf(
      "\nRank_LSTM grid winner: seq_len=%d hidden=%d alpha=%g "
      "(valid IC %.4f)\n",
      rank_lstm.best_config.seq_len, rank_lstm.best_config.hidden,
      rank_lstm.best_config.alpha, rank_lstm.best_valid_ic);
  return 0;
}

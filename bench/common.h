#ifndef ALPHAEVOLVE_BENCH_COMMON_H_
#define ALPHAEVOLVE_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "core/evaluator_pool.h"
#include "core/evolution.h"
#include "core/generators.h"
#include "core/mining.h"
#include "ga/genetic.h"
#include "market/dataset.h"

namespace aebench {

namespace core = alphaevolve::core;
namespace market = alphaevolve::market;
namespace ga = alphaevolve::ga;

/// Benchmark-wide knobs, overridable via environment variables so the same
/// binaries scale from smoke runs to paper-scale studies:
///   AE_BENCH_STOCKS   universe size before filters   (default 100)
///   AE_BENCH_DAYS     calendar length                (default 500)
///   AE_BENCH_SEED     market seed                    (default 17)
///   AE_BENCH_TIME     per-search wall budget, secs   (default 4)
///   AE_BENCH_ROUNDS   mining rounds                  (default 5)
///   AE_BENCH_THREADS  evaluation worker threads      (default 1)
///   AE_BENCH_INTRA_THREADS  task shards per candidate execution (default 1)
///   AE_BENCH_FUSE     0 → reference interpreter instead of fused kernels
///                     (default 1; bit-identical either way)
///   AE_BENCH_BLOCK    fused-path tasks per cache block (default 0 = auto)
///   AE_BENCH_PIPELINE evolution pipeline depth: in-flight evaluation
///                     batches overlapped with next-batch generation
///                     (default 1; 0 = synchronous driver; bit-identical
///                     at any depth)
///   AE_BENCH_FULL     1 → paper-scale grid/budgets   (default 0)
struct BenchOptions {
  int num_stocks = 150;
  int num_days = 560;
  uint64_t market_seed = 17;
  double search_seconds = 5.0;
  int rounds = 5;
  int num_threads = 1;
  int intra_threads = 1;
  bool fuse_segments = true;
  int block_size = 0;
  int pipeline_depth = 1;
  bool full = false;

  static BenchOptions FromEnv();
};

/// The calibrated synthetic-NASDAQ dataset all benches share (signal
/// strengths chosen so achievable ICs land in the paper's 0.01–0.07 band;
/// see DESIGN.md "Substitutions").
market::Dataset MakeBenchDataset(const BenchOptions& opt);

/// Evaluator configuration with the bench's intra-candidate shard count
/// (AE_BENCH_INTRA_THREADS) applied; pass to Evaluator/EvaluatorPool so
/// each candidate's lockstep execution is task-sharded.
core::EvaluatorConfig MakeEvaluatorConfig(const BenchOptions& opt);

/// Evolution configuration matching the paper's §5.2 settings, with the
/// bench time budget and the bench thread count (batch size auto-derived).
core::EvolutionConfig MakeEvolutionConfig(const BenchOptions& opt,
                                          uint64_t seed);

/// Genetic-algorithm baseline configuration with the same budget.
ga::GaConfig MakeGaConfig(const BenchOptions& opt, uint64_t seed);

/// One round of the paper's protocol: run a search from each initialization
/// and keep the one with the highest validation Sharpe ratio (§5.4.1).
struct RoundOutcome {
  bool has_alpha = false;
  core::InitKind init = core::InitKind::kExpert;
  core::EvolutionResult result;
  /// Per-initialization results, in the order of `inits` (for Table 3).
  std::vector<core::EvolutionResult> per_init;
};
RoundOutcome RunRoundBestOfInits(core::WeaklyCorrelatedMiner& miner,
                                 const std::vector<core::InitKind>& inits,
                                 uint64_t seed);

/// Runs one search initialized from a given program (e.g., a previously
/// accepted alpha, the paper's B* round).
core::EvolutionResult RunRoundFrom(core::WeaklyCorrelatedMiner& miner,
                                   const core::AlphaProgram& init,
                                   uint64_t seed);

/// One row of the per-round, per-initialization study (Tables 2/3/4, Fig 6).
struct StudyRow {
  std::string name;          ///< e.g. "alpha_AE_D_2" or "alpha_AE_B0_4".
  bool has_alpha = false;
  double sharpe_test = 0.0;
  double ic_test = 0.0;
  double sharpe_valid = 0.0;
  double ic_valid = 0.0;
  double corr = 0.0;         ///< vs accepted set at round start; NaN round 0.
  bool accepted = false;     ///< won its round and entered A.
  core::EvolutionStats stats;
  std::vector<std::pair<int64_t, double>> trajectory;
  core::AlphaProgram program;
  core::AlphaMetrics metrics;
};

/// Full AlphaEvolve mining study (§5.4.1): rounds 0..R-2 run one search per
/// initialization (D / NOOP / R / NN) under the cutoff vs the accepted set;
/// the round winner (highest validation Sharpe) joins A. The final round is
/// initialized from the accepted alphas themselves (the paper's B* round).
struct AeStudyResult {
  std::vector<std::vector<StudyRow>> rounds;  ///< [round][init index]
  std::vector<core::AcceptedAlpha> accepted;
  std::vector<std::string> accepted_names;
};
AeStudyResult RunAeStudy(core::Evaluator& evaluator, const BenchOptions& opt);

/// Pool-backed variant: per-round searches run concurrently on the pool.
/// Each search is an independent deterministic stream, but the bench
/// configs are time-budgeted, so concurrent searches share the workers and
/// cover fewer candidates per wall-second than they would serially — run
/// with AE_BENCH_THREADS=1 when comparing against serial outputs.
AeStudyResult RunAeStudy(core::EvaluatorPool& pool, const BenchOptions& opt);

/// The genetic-algorithm lineage for Table 2: one GA search per round with
/// the cutoff against its *own* accepted set; stops (NA rows) after two
/// consecutive failed/negative rounds, as the paper stopped alpha_G_4.
struct GaStudyRow {
  std::string name;
  bool has_alpha = false;
  double sharpe_test = 0.0;
  double ic_test = 0.0;
  double sharpe_valid = 0.0;
  double ic_valid = 0.0;
  double corr = 0.0;
  int64_t searched = 0;
};
std::vector<GaStudyRow> RunGaStudy(const market::Dataset& dataset,
                                   const BenchOptions& opt);

/// "0.137851" / "NA" formatting used across the tables.
std::string Num(double v);
std::string Corr(double v);  ///< NaN → "NA" (round 0 has no accepted set).

/// Prints the shared bench banner (dataset shape, budgets).
void PrintBanner(const char* title, const BenchOptions& opt,
                 const market::Dataset& dataset);

/// Directory for CSV side-outputs (created on demand): bench_results/.
std::string ResultsDir();

}  // namespace aebench

#endif  // ALPHAEVOLVE_BENCH_COMMON_H_

// Table 2 — "Performance of weakly correlated alpha mining": AlphaEvolve vs
// the genetic algorithm across five mining rounds with the 15% cutoff
// accumulating over the accepted set. Expected shape (paper): both degrade
// as cutoffs accumulate; the GA degrades to uselessness (negative Sharpe,
// abandoned in the last round) while AlphaEvolve keeps producing weakly
// correlated alphas, and recovers in the last round when re-initialized
// from the previously accepted alphas (B*).

#include <cmath>
#include <iostream>

#include "common.h"
#include "core/evaluator.h"
#include "util/table.h"

using namespace aebench;

int main() {
  const BenchOptions opt = BenchOptions::FromEnv();
  const market::Dataset dataset = MakeBenchDataset(opt);
  PrintBanner("Table 2: weakly correlated alpha mining, AE vs GA", opt,
              dataset);

  core::Evaluator evaluator(dataset, core::EvaluatorConfig{});
  const AeStudyResult ae = RunAeStudy(evaluator, opt);
  const std::vector<GaStudyRow> ga = RunGaStudy(dataset, opt);

  alphaevolve::TablePrinter table(
      {"Alpha", "Sharpe ratio", "IC", "Correlation with the best alphas",
       "Sharpe (test)", "IC (test)"});
  for (int round = 0; round < opt.rounds; ++round) {
    // The AE row for the round: the accepted (winning) alpha.
    const StudyRow* winner = nullptr;
    for (const StudyRow& row : ae.rounds[static_cast<size_t>(round)]) {
      if (row.accepted) winner = &row;
    }
    if (winner != nullptr) {
      table.AddRow({winner->name, Num(winner->sharpe_valid),
                    Num(winner->ic_valid), Corr(winner->corr),
                    Num(winner->sharpe_test), Num(winner->ic_test)});
    } else {
      table.AddRow({"alpha_AE_-_" + std::to_string(round), "NA", "NA", "NA",
                    "NA", "NA"});
    }
    const GaStudyRow& g = ga[static_cast<size_t>(round)];
    if (g.has_alpha) {
      table.AddRow({g.name, Num(g.sharpe_valid), Num(g.ic_valid),
                    Corr(g.corr), Num(g.sharpe_test), Num(g.ic_test)});
    } else {
      table.AddRow({g.name, "NA", "NA", "NA", "NA", "NA"});
    }
  }
  table.Print(std::cout);

  std::printf("\naccepted set A: ");
  for (const auto& name : ae.accepted_names) std::printf("%s ", name.c_str());
  std::printf("\n");
  return 0;
}

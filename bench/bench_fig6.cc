// Figure 6 — "Evolutionary trajectories for the best alphas in all rounds":
// best-fitness-so-far (validation IC) against the number of searched
// candidate alphas, one series per mining round's accepted alpha. Expected
// shape (paper): trajectories improve sharply early; later rounds (more
// accumulated cutoffs) fluctuate lower; the final B* round recovers.
//
// Prints the series and writes bench_results/fig6_trajectories.csv.

#include <cstdio>
#include <iostream>

#include "common.h"
#include "core/evaluator_pool.h"
#include "util/csv.h"

using namespace aebench;

int main() {
  const BenchOptions opt = BenchOptions::FromEnv();
  const market::Dataset dataset = MakeBenchDataset(opt);
  PrintBanner("Figure 6: evolutionary trajectories of round winners", opt,
              dataset);

  core::EvaluatorPool pool(dataset, MakeEvaluatorConfig(opt),
                           opt.num_threads);
  const AeStudyResult ae = RunAeStudy(pool, opt);

  alphaevolve::CsvWriter csv(ResultsDir() + "/fig6_trajectories.csv",
                             {"round", "alpha", "candidates",
                              "best_valid_ic"});
  for (size_t round = 0; round < ae.rounds.size(); ++round) {
    for (const StudyRow& row : ae.rounds[round]) {
      if (!row.accepted) continue;
      std::printf("(%c) %s — final valid IC %.6f, searched %lld\n",
                  static_cast<char>('a' + round), row.name.c_str(),
                  row.trajectory.empty() ? 0.0 : row.trajectory.back().second,
                  static_cast<long long>(row.stats.candidates));
      // Print a compact series: every ~10th sample.
      const size_t stride = std::max<size_t>(1, row.trajectory.size() / 12);
      for (size_t i = 0; i < row.trajectory.size(); ++i) {
        csv.WriteRow({std::to_string(round), row.name,
                      std::to_string(row.trajectory[i].first),
                      std::to_string(row.trajectory[i].second)});
        if (i % stride == 0 || i + 1 == row.trajectory.size()) {
          std::printf("    %8lld -> %.6f\n",
                      static_cast<long long>(row.trajectory[i].first),
                      row.trajectory[i].second);
        }
      }
    }
  }
  std::printf("\nfull series written to %s/fig6_trajectories.csv\n",
              ResultsDir().c_str());
  return 0;
}

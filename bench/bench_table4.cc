// Table 4 — "Ablation study of the parameter-updating function": each alpha
// is re-evaluated with def Update() stripped (the `*_P` variant), i.e. no
// parameter learning — the alpha degenerates into a formulaic alpha, which
// the paper notes is the parameter-free special case of the new class.
//
// Rows: the hand-written two-layer-network alpha (whose Update performs
// SGD, so stripping it must hurt), then the mining study's per-round best
// alphas *that actually learned parameters* (live Update instructions after
// redundancy pruning). Expected shape (paper): IC drops without the
// parameter-updating function; Sharpe may move either way because it only
// depends on the extreme ranks.

#include <iostream>
#include <limits>

#include "common.h"
#include "core/evaluator.h"
#include "core/pruning.h"
#include "eval/metrics.h"
#include "util/table.h"

using namespace aebench;

namespace {

core::AlphaMetrics EvaluateStripped(core::Evaluator& evaluator,
                                    const core::AlphaProgram& program,
                                    const core::ProgramLimits& limits) {
  core::AlphaProgram stripped = program;
  stripped.update.assign(1, core::Instruction{});  // single no-op
  const core::AlphaProgram pruned =
      core::PruneRedundant(stripped, limits).pruned;
  return evaluator.Evaluate(pruned, core::Fingerprint(pruned));
}

}  // namespace

int main() {
  const BenchOptions opt = BenchOptions::FromEnv();
  const market::Dataset dataset = MakeBenchDataset(opt);
  PrintBanner("Table 4: parameter-updating function ablation", opt, dataset);

  core::Evaluator evaluator(dataset, core::EvaluatorConfig{});
  const core::ProgramLimits limits;
  alphaevolve::TablePrinter table(
      {"Alpha", "Sharpe ratio", "IC", "Sharpe (test)", "IC (test)",
       "Update ops (live)"});

  auto add_pair = [&](const std::string& name,
                      const core::AlphaProgram& program) {
    const core::AlphaProgram pruned =
        core::PruneRedundant(program, limits).pruned;
    const core::AlphaMetrics full =
        evaluator.Evaluate(pruned, core::Fingerprint(pruned));
    const core::AlphaMetrics ablated =
        EvaluateStripped(evaluator, program, limits);
    table.AddRow({name,
                  full.valid ? Num(full.sharpe_valid) : "NA",
                  full.valid ? Num(full.ic_valid) : "NA",
                  full.valid ? Num(full.sharpe_test) : "NA",
                  full.valid ? Num(full.ic_test) : "NA",
                  std::to_string(pruned.update.size())});
    table.AddRow({name + "_P",
                  ablated.valid ? Num(ablated.sharpe_valid) : "NA",
                  ablated.valid ? Num(ablated.ic_valid) : "NA",
                  ablated.valid ? Num(ablated.sharpe_test) : "NA",
                  ablated.valid ? Num(ablated.ic_test) : "NA", "0"});
  };

  // The two-layer network alpha: its Update is SGD, the clearest case.
  add_pair("alpha_NN_init", core::MakeNeuralNetAlpha(dataset.window()));

  // Mining-study alphas that actually use parameters.
  const AeStudyResult ae = RunAeStudy(evaluator, opt);
  int with_params = 0;
  for (const auto& round : ae.rounds) {
    const StudyRow* chosen = nullptr;
    for (const StudyRow& row : round) {
      if (!row.has_alpha) continue;
      const bool has_params =
          !core::PruneRedundant(row.program, limits).pruned.update.empty();
      if (row.accepted && has_params) {
        chosen = &row;  // round winner learned parameters: ideal row
        break;
      }
      if (has_params && (chosen == nullptr ||
                         row.sharpe_valid > chosen->sharpe_valid)) {
        chosen = &row;  // else best parameterized alpha of the round
      }
    }
    if (chosen != nullptr) {
      add_pair(chosen->name, chosen->program);
      ++with_params;
    }
  }
  table.Print(std::cout);
  std::printf(
      "\n%d of %d rounds produced alphas with live parameter updates.\n"
      "(Update ops (live) = def Update() instructions surviving redundancy\n"
      " pruning; `_P` = same alpha with the parameter-updating function\n"
      " removed, the paper's ablation)\n",
      with_params, opt.rounds);
  return 0;
}

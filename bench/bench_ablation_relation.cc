// Design-choice ablation (DESIGN.md): the paper's §4.1 claim that
// *selectively injecting* relational domain knowledge — RelationOps in the
// search space, with evolution free to use or ignore them — improves the
// evolved alphas. We run the same searches with RelationOps enabled vs
// removed from the op set, over several search seeds, on a market whose
// embedded signal is partly sector-relative. Expected: the relation-enabled
// searches reach higher validation ICs, and the winning programs actually
// contain relation ops.

#include <cstdio>
#include <iostream>

#include "common.h"
#include "core/evaluator.h"
#include "core/pruning.h"
#include "util/table.h"

using namespace aebench;

namespace {

int CountRelationOps(const core::AlphaProgram& program) {
  int count = 0;
  for (auto c : {core::ComponentId::kSetup, core::ComponentId::kPredict,
                 core::ComponentId::kUpdate}) {
    for (const auto& ins : program.component(c)) {
      if (core::GetOpInfo(ins.op).is_relation) ++count;
    }
  }
  return count;
}

}  // namespace

int main() {
  const BenchOptions opt = BenchOptions::FromEnv();
  // The ablation isolates the RelationOps design choice, so it runs on a
  // market whose predictable signal is dominated by the *sector-relative*
  // component — the workload §4.1 motivates (the shared-dataset benches use
  // a milder mix).
  market::MarketConfig mc = market::MarketConfig::BenchScale();
  mc.num_stocks = opt.num_stocks;
  mc.num_days = opt.num_days;
  mc.seed = opt.market_seed;
  mc.mean_reversion_strength = 0.03;
  mc.momentum_strength = 0.08;  // sector-demeaned momentum dominates
  market::DatasetConfig dc;
  dc.train_fraction = 0.65;
  dc.valid_fraction = 0.20;
  const market::Dataset dataset = market::Dataset::Simulate(mc, dc);
  PrintBanner("Ablation: selective relational-knowledge injection", opt,
              dataset);

  core::Evaluator evaluator(dataset, core::EvaluatorConfig{});
  alphaevolve::TablePrinter table({"Search", "RelationOps", "best IC (valid)",
                                   "Sharpe (valid)", "relation ops in winner"});
  const int kSeeds = 3;
  double sum_with = 0.0, sum_without = 0.0;
  for (int seed = 0; seed < kSeeds; ++seed) {
    for (bool allow : {true, false}) {
      core::EvolutionConfig cfg = MakeEvolutionConfig(opt, 900 + seed);
      cfg.mutator.allow_relation_ops = allow;
      core::Evolution evo(evaluator, cfg);
      const core::EvolutionResult r =
          evo.Run(core::MakeExpertAlpha(dataset.window()));
      const double ic = r.has_alpha ? r.best_metrics.ic_valid : -1.0;
      (allow ? sum_with : sum_without) += ic;
      table.AddRow({"seed " + std::to_string(seed), allow ? "on" : "off",
                    r.has_alpha ? Num(ic) : "NA",
                    r.has_alpha ? Num(r.best_metrics.sharpe_valid) : "NA",
                    r.has_alpha
                        ? std::to_string(CountRelationOps(
                              core::PruneRedundant(r.best, cfg.mutator.limits)
                                  .pruned))
                        : "-"});
    }
  }
  table.Print(std::cout);
  std::printf("\nmean best IC: with RelationOps %.6f, without %.6f\n",
              sum_with / kSeeds, sum_without / kSeeds);
  return 0;
}

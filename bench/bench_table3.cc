// Table 3 — "Performance of weakly correlated alpha mining for different
// initializations": per-round results for the D / NOOP / R / NN starting
// parents, with the last round initialized from the accepted alphas (B*).
// Expected shape (paper): a well-designed initialization (D) tends to win
// rounds; NOOP is weakest; performance decreases over rounds as cutoffs
// accumulate and recovers in the B* round.

#include <iostream>

#include "common.h"
#include "core/evaluator.h"
#include "util/table.h"

using namespace aebench;

int main() {
  const BenchOptions opt = BenchOptions::FromEnv();
  const market::Dataset dataset = MakeBenchDataset(opt);
  PrintBanner("Table 3: initialization study", opt, dataset);

  core::Evaluator evaluator(dataset, core::EvaluatorConfig{});
  const AeStudyResult ae = RunAeStudy(evaluator, opt);

  alphaevolve::TablePrinter table({"Alpha", "Sharpe ratio", "IC",
                                   "Correlation with the best alphas",
                                   "Sharpe (test)", "IC (test)"});
  for (const auto& round : ae.rounds) {
    for (const StudyRow& row : round) {
      const std::string name = row.accepted ? row.name + " *" : row.name;
      if (row.has_alpha) {
        table.AddRow({name, Num(row.sharpe_valid), Num(row.ic_valid),
                      Corr(row.corr), Num(row.sharpe_test),
                      Num(row.ic_test)});
      } else {
        table.AddRow({name, "NA", "NA", "NA", "NA", "NA"});
      }
    }
  }
  table.Print(std::cout);
  std::printf("\n(* = round winner by validation Sharpe, accepted into A)\n");
  return 0;
}

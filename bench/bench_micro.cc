// Micro-benchmarks (google-benchmark): executor throughput, redundancy
// pruning & fingerprinting overhead, relation-op scaling, mutation and GP
// evaluation throughput. These quantify the constants behind Table 6: the
// structural fingerprint costs microseconds while a probe evaluation costs
// milliseconds — which is why pruning searches an order of magnitude more
// alphas per unit time.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/checkpoint.h"
#include "core/dispatch.h"
#include "core/evaluator.h"
#include "core/evaluator_pool.h"
#include "core/evolution.h"
#include "core/generators.h"
#include "core/kernels.h"
#include "core/mutator.h"
#include "core/pruning.h"
#include "ga/expr.h"
#include "market/dataset.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "scenario/robustness.h"
#include "scenario/scenario_fitness.h"
#include "service/alpha_service.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/threadpool.h"

namespace {

using namespace alphaevolve;

const market::Dataset& BenchDataset(int num_stocks) {
  static std::map<int, market::Dataset>* cache =
      new std::map<int, market::Dataset>();
  auto it = cache->find(num_stocks);
  if (it == cache->end()) {
    market::MarketConfig mc = market::MarketConfig::BenchScale();
    mc.num_stocks = num_stocks;
    mc.num_days = 300;
    mc.seed = 11;
    it = cache->emplace(num_stocks,
                        market::Dataset::Simulate(mc, {})).first;
  }
  return it->second;
}

void BM_ExecutorExpertAlpha(benchmark::State& state) {
  const auto& ds = BenchDataset(static_cast<int>(state.range(0)));
  core::Executor exec(ds, core::ExecutorConfig{});
  const auto prog = core::MakeExpertAlpha(ds.window());
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.Run(prog, 1));
  }
  state.SetItemsProcessed(state.iterations() * ds.num_tasks());
}
BENCHMARK(BM_ExecutorExpertAlpha)->Arg(32)->Arg(64)->Arg(128);

void BM_ExecutorNeuralNetAlpha(benchmark::State& state) {
  const auto& ds = BenchDataset(64);
  core::Executor exec(ds, core::ExecutorConfig{});
  const auto prog = core::MakeNeuralNetAlpha(ds.window());
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.Run(prog, 1));
  }
}
BENCHMARK(BM_ExecutorNeuralNetAlpha);

void BM_ExecutorRelationOps(benchmark::State& state) {
  // An alpha dominated by cross-task relation ops, to measure their cost.
  const auto& ds = BenchDataset(static_cast<int>(state.range(0)));
  core::Executor exec(ds, core::ExecutorConfig{});
  core::AlphaProgram prog = core::MakeExpertAlpha(ds.window());
  core::Instruction rank;
  rank.op = core::Op::kRank;
  rank.out = core::kPredictionScalar;
  rank.in1 = core::kPredictionScalar;
  prog.predict.push_back(rank);
  core::Instruction rrank;
  rrank.op = core::Op::kRelationRank;
  rrank.out = core::kPredictionScalar;
  rrank.in1 = core::kPredictionScalar;
  rrank.idx0 = 1;
  prog.predict.push_back(rrank);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.Run(prog, 1));
  }
}
BENCHMARK(BM_ExecutorRelationOps)->Arg(32)->Arg(128);

// --- Intra-candidate task sharding ----------------------------------------
// One candidate's lockstep execution over a large simulated universe (the
// paper's 1140-stock scale), task-sharded over intra_candidate_threads.
// The program mixes element-wise segments with cross-task relation ops so
// both the shard kernels and the group-parallel rank path are measured.
// `tasks_per_sec` is the headline; `speedup_vs_serial` compares each thread
// count against the 1-thread run (registered first) of the same program.
// Results are bit-identical across thread counts (see
// executor_sharded_test), so this measures pure scheduling overhead/gain.

double g_sharded_serial_tasks_per_sec = 0.0;

void BM_ExecutorSharded(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const auto& ds = BenchDataset(1100);  // >= 1000 tasks after filters
  core::ExecutorConfig cfg;
  cfg.intra_candidate_threads = threads;
  core::Executor exec(ds, cfg);
  core::AlphaProgram prog = core::MakeExpertAlpha(ds.window());
  core::Instruction rank;
  rank.op = core::Op::kRank;
  rank.out = core::kPredictionScalar;
  rank.in1 = core::kPredictionScalar;
  prog.predict.push_back(rank);
  core::Instruction rrank;
  rrank.op = core::Op::kRelationRank;
  rrank.out = core::kPredictionScalar;
  rrank.in1 = core::kPredictionScalar;
  rrank.idx0 = 1;  // industry groups
  prog.predict.push_back(rrank);

  int64_t runs = 0;
  double seconds = 0.0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(exec.Run(prog, 1));
    seconds += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    ++runs;
  }
  const int64_t tasks = runs * ds.num_tasks();
  state.SetItemsProcessed(tasks);
  if (seconds > 0.0) {
    const double tps = static_cast<double>(tasks) / seconds;
    state.counters["tasks_per_sec"] = tps;
    if (threads == 1) {
      g_sharded_serial_tasks_per_sec = tps;
    } else if (g_sharded_serial_tasks_per_sec > 0.0) {
      state.counters["speedup_vs_serial"] =
          tps / g_sharded_serial_tasks_per_sec;
    }
  }
}
BENCHMARK(BM_ExecutorSharded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- Fused segment kernels vs reference interpreter (BENCH_4.json) --------
// One candidate's full lockstep execution over the 1100-task universe:
// interpreter (per-instruction switch sweeping all task state once per
// instruction) vs fused micro-op kernels (whole segment over a
// cache-resident block of tasks, branch-free dispatch, persistent arena
// workers between segments). Results are bit-identical (fused_parity_test),
// so `speedup_vs_interpreter` — fused cands/sec over the interpreter run at
// the same thread count — is pure kernel/locality/barrier gain.
// `cpu_ms_per_cand` (process CPU time) is the number to read on a 1-core
// box, where wall speedups cannot show.

std::map<int, double>& InterpreterCandsPerSec() {
  static auto* baselines = new std::map<int, double>();
  return *baselines;
}

void BM_FusedSegment(benchmark::State& state) {
  const bool fused = state.range(0) != 0;
  const int threads = static_cast<int>(state.range(1));
  const auto& ds = BenchDataset(1100);
  core::ExecutorConfig cfg;
  cfg.fuse_segments = fused;
  if (const char* bs = std::getenv("AE_BENCH_BLOCK")) cfg.block_size = std::atoi(bs);
  cfg.intra_candidate_threads = threads;
  core::Executor exec(ds, cfg);
  // A long element-wise segment — the shape evolution actually produces
  // (up to 21 predict / 45 update instructions, mostly vector/scalar math)
  // and the shape fusion targets: the interpreter sweeps all task state
  // once per instruction, the fused path once per segment. A relation op
  // keeps segment boundaries and the arena barrier in play.
  core::AlphaProgram prog = core::MakeExpertAlpha(ds.window());
  auto push = [&prog](core::Op op, int out, int in1, int in2) {
    core::Instruction ins;
    ins.op = op;
    ins.out = static_cast<uint8_t>(out);
    ins.in1 = static_cast<uint8_t>(in1);
    ins.in2 = static_cast<uint8_t>(in2);
    prog.predict.push_back(ins);
  };
  push(core::Op::kVectorSub, 3, 1, 2);
  push(core::Op::kVectorMul, 4, 3, 1);
  push(core::Op::kVectorAdd, 5, 4, 2);
  push(core::Op::kVectorScale, 6, 5, 2);
  push(core::Op::kVectorMax, 7, 6, 3);
  push(core::Op::kVectorDiv, 8, 7, 1);
  push(core::Op::kVectorAbs, 9, 8, 0);
  push(core::Op::kMatrixAdd, 1, 0, 0);
  push(core::Op::kMatrixMul, 2, 1, 0);
  push(core::Op::kMatrixHeaviside, 3, 2, 0);
  push(core::Op::kMatrixMeanAxis, 10, 3, 0);
  push(core::Op::kVectorDot, 4, 9, 10);
  push(core::Op::kScalarMul, 5, 4, 1);
  push(core::Op::kScalarAdd, core::kPredictionScalar, 5,
       core::kPredictionScalar);
  core::Instruction rank;
  rank.op = core::Op::kRank;
  rank.out = core::kPredictionScalar;
  rank.in1 = core::kPredictionScalar;
  prog.predict.push_back(rank);

  int64_t runs = 0;
  double seconds = 0.0;
  const std::clock_t cpu0 = std::clock();
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(exec.Run(prog, 1));
    seconds += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    ++runs;
  }
  const double cpu_seconds =
      static_cast<double>(std::clock() - cpu0) / CLOCKS_PER_SEC;
  state.SetItemsProcessed(runs * ds.num_tasks());
  if (seconds > 0.0 && runs > 0) {
    const double cands_per_sec = static_cast<double>(runs) / seconds;
    state.counters["cands_per_sec"] = cands_per_sec;
    state.counters["cpu_ms_per_cand"] =
        1e3 * cpu_seconds / static_cast<double>(runs);
    if (!fused) {
      InterpreterCandsPerSec()[threads] = cands_per_sec;
    } else if (InterpreterCandsPerSec().count(threads) > 0) {
      state.counters["speedup_vs_interpreter"] =
          cands_per_sec / InterpreterCandsPerSec()[threads];
    }
  }
}
BENCHMARK(BM_FusedSegment)
    ->Args({0, 1})  // interpreter baselines register first
    ->Args({1, 1})
    ->Args({0, 4})
    ->Args({1, 4})
    ->Args({0, 8})
    ->Args({1, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- Blocked matmul kernel (BENCH_4.json) ---------------------------------
// The shared n×n kernel both executor paths call, against the naive ijk
// triple loop it replaced (bit-identical accumulation order, so the
// `gflops_proxy` gap is free). n = 13 is the paper's feature/window shape;
// 32 shows the blocking effect once operands outgrow L1.

void NaiveMatMul(const double* a, const double* b, double* out, int n) {
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int q = 0; q < n; ++q) acc += a[i * n + q] * b[q * n + j];
      out[i * n + j] = acc;
    }
  }
}

void BM_BlockedMatMul(benchmark::State& state) {
  const bool blocked = state.range(0) != 0;
  const int n = static_cast<int>(state.range(1));
  Rng rng(11);
  std::vector<double> a(static_cast<size_t>(n) * n);
  std::vector<double> b(static_cast<size_t>(n) * n);
  std::vector<double> out(static_cast<size_t>(n) * n);
  for (double& x : a) x = rng.Gaussian();
  for (double& x : b) x = rng.Gaussian();
  for (auto _ : state) {
    if (blocked) {
      core::MatMulBlocked(a.data(), b.data(), out.data(), n);
    } else {
      NaiveMatMul(a.data(), b.data(), out.data(), n);
    }
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  const double flops_per_iter = 2.0 * n * n * n;
  state.counters["gflops_proxy"] = benchmark::Counter(
      flops_per_iter * 1e-9, benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_BlockedMatMul)
    ->Args({0, 13})
    ->Args({1, 13})
    ->Args({0, 32})
    ->Args({1, 32})
    ->Args({0, 64})
    ->Args({1, 64});

// --- Per-segment barrier cost: arena vs pool re-submission (BENCH_4.json) -
// The synchronization a sharded executor pays per element-wise segment:
// PR 2 re-submitted helper tasks through the pool queue every segment
// (BM_PoolForBarrier); the persistent ShardArena parks its helpers on an
// epoch barrier between segments (BM_ArenaBarrier). The empty body makes
// each iteration ≈ one barrier; `barrier_ns_per_segment` is the headline.

void BM_ArenaBarrier(benchmark::State& state) {
  const int lanes = static_cast<int>(state.range(0));
  ThreadPool pool(lanes - 1);
  ShardArena arena(&pool, lanes - 1);
  int64_t rounds = 0;
  double seconds = 0.0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    arena.ParallelFor(lanes, [](int) {});
    seconds += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    ++rounds;
  }
  if (rounds > 0) {
    state.counters["barrier_ns_per_segment"] =
        1e9 * seconds / static_cast<double>(rounds);
  }
}
BENCHMARK(BM_ArenaBarrier)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_PoolForBarrier(benchmark::State& state) {
  const int lanes = static_cast<int>(state.range(0));
  ThreadPool pool(lanes - 1);
  int64_t rounds = 0;
  double seconds = 0.0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    pool.ParallelFor(lanes, [](int) {});
    seconds += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    ++rounds;
  }
  if (rounds > 0) {
    state.counters["barrier_ns_per_segment"] =
        1e9 * seconds / static_cast<double>(rounds);
  }
}
BENCHMARK(BM_PoolForBarrier)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// --- Runtime-dispatched kernel variants (BENCH_6.json) --------------------
// The same row-tiled matmul body compiled per ISA (core/kernels_impl.inc),
// fetched through the dispatch table: scalar (baseline flags) vs whatever
// SIMD variants this host can run. Accumulation order is identical across
// variants (fused_parity_test), so `speedup_vs_scalar` is pure instruction
// selection. Registered in main() for exactly the runnable variants —
// scalar first, so it seeds the baseline for each n.

std::map<int, double>& ScalarMatMulPerSec() {
  static auto* baselines = new std::map<int, double>();
  return *baselines;
}

void DispatchedMatMulBody(benchmark::State& state,
                          const core::KernelTable* table, int n) {
  Rng rng(11);
  std::vector<double> a(static_cast<size_t>(n) * n);
  std::vector<double> b(static_cast<size_t>(n) * n);
  std::vector<double> out(static_cast<size_t>(n) * n);
  for (double& x : a) x = rng.Gaussian();
  for (double& x : b) x = rng.Gaussian();
  int64_t iters = 0;
  double seconds = 0.0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    table->matmul(a.data(), b.data(), out.data(), n);
    seconds += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    ++iters;
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  const double flops_per_iter = 2.0 * n * n * n;
  state.counters["gflops_proxy"] = benchmark::Counter(
      flops_per_iter * 1e-9, benchmark::Counter::kIsIterationInvariantRate);
  if (seconds > 0.0 && iters > 0) {
    const double per_sec = static_cast<double>(iters) / seconds;
    if (table->variant == core::KernelVariant::kScalar) {
      ScalarMatMulPerSec()[n] = per_sec;
    } else if (ScalarMatMulPerSec().count(n) > 0) {
      state.counters["speedup_vs_scalar"] = per_sec / ScalarMatMulPerSec()[n];
    }
  }
}

void RegisterDispatchedMatMul() {
  for (const core::KernelVariant v : core::RunnableKernelVariants()) {
    const core::KernelTable* table = core::GetKernelTable(v);
    for (const int n : {13, 32, 64}) {
      const std::string name = std::string("BM_DispatchedMatMul/") +
                               core::KernelVariantName(v) + "/" +
                               std::to_string(n);
      benchmark::RegisterBenchmark(
          name.c_str(), [table, n](benchmark::State& st) {
            DispatchedMatMulBody(st, table, n);
          });
    }
  }
}

// --- Relation ops: in-plan micro-phases vs barrier path (BENCH_6.json) ----
// A relation-heavy candidate (three relation families splitting the predict
// component into four fused segments) over the 1100-task universe. The
// barrier path (PR 4: serial whole-universe gather, group-parallel rank
// round, serial scatter — per relation) registers first; the in-plan path
// executes each relation as pre-partitioned per-group gather → rank/demean
// → scatter inside one arena round. `speedup_vs_barrier` at the same thread
// count is the lowering gain; results are bit-identical either way
// (fused_parity_test), and `cpu_ms_per_cand` is the number to read on a
// 1-core box.

std::map<int, double>& BarrierRelationCandsPerSec() {
  static auto* baselines = new std::map<int, double>();
  return *baselines;
}

void BM_FusedRelationSegment(benchmark::State& state) {
  const bool in_plan = state.range(0) != 0;
  const int threads = static_cast<int>(state.range(1));
  const auto& ds = BenchDataset(1100);
  core::ExecutorConfig cfg;
  cfg.intra_candidate_threads = threads;
  cfg.relation_in_plan = in_plan;
  core::Executor exec(ds, cfg);
  core::AlphaProgram prog = core::MakeExpertAlpha(ds.window());
  auto push_rel = [&prog](core::Op op, int out, int in1, int industry) {
    core::Instruction ins;
    ins.op = op;
    ins.out = static_cast<uint8_t>(out);
    ins.in1 = static_cast<uint8_t>(in1);
    ins.idx0 = static_cast<uint8_t>(industry);
    prog.predict.push_back(ins);
  };
  push_rel(core::Op::kRank, 4, core::kPredictionScalar, 0);
  push_rel(core::Op::kRelationRank, 5, 4, 1);
  push_rel(core::Op::kRelationDemean, 6, 5, 0);
  core::Instruction mix;
  mix.op = core::Op::kScalarAdd;
  mix.out = core::kPredictionScalar;
  mix.in1 = 6;
  mix.in2 = 4;
  prog.predict.push_back(mix);
  push_rel(core::Op::kRank, core::kPredictionScalar, core::kPredictionScalar,
           0);

  int64_t runs = 0;
  double seconds = 0.0;
  const std::clock_t cpu0 = std::clock();
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(exec.Run(prog, 1));
    seconds += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    ++runs;
  }
  const double cpu_seconds =
      static_cast<double>(std::clock() - cpu0) / CLOCKS_PER_SEC;
  state.SetItemsProcessed(runs * ds.num_tasks());
  if (seconds > 0.0 && runs > 0) {
    const double cands_per_sec = static_cast<double>(runs) / seconds;
    state.counters["cands_per_sec"] = cands_per_sec;
    state.counters["cpu_ms_per_cand"] =
        1e3 * cpu_seconds / static_cast<double>(runs);
    if (!in_plan) {
      BarrierRelationCandsPerSec()[threads] = cands_per_sec;
    } else if (BarrierRelationCandsPerSec().count(threads) > 0) {
      state.counters["speedup_vs_barrier"] =
          cands_per_sec / BarrierRelationCandsPerSec()[threads];
    }
  }
}
BENCHMARK(BM_FusedRelationSegment)
    ->Args({0, 1})  // barrier baselines register first
    ->Args({1, 1})
    ->Args({0, 4})
    ->Args({1, 4})
    ->Args({0, 8})
    ->Args({1, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_PruneAndFingerprint(benchmark::State& state) {
  // The paper's evaluation-free fingerprint: microseconds per candidate.
  core::MutatorConfig mcfg;
  core::Mutator mutator(mcfg);
  Rng rng(3);
  core::AlphaProgram prog = core::MakeNeuralNetAlpha(13);
  for (int i = 0; i < 30; ++i) prog = mutator.Mutate(prog, rng);
  for (auto _ : state) {
    auto pruned = core::PruneRedundant(prog, mcfg.limits);
    benchmark::DoNotOptimize(core::Fingerprint(pruned.pruned));
  }
}
BENCHMARK(BM_PruneAndFingerprint);

void BM_ProbeFingerprint(benchmark::State& state) {
  // The AutoML-Zero functional fingerprint: a real (truncated) evaluation.
  const auto& ds = BenchDataset(64);
  core::Evaluator evaluator(ds, core::EvaluatorConfig{});
  const auto prog = core::MakeNeuralNetAlpha(ds.window());
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.ProbeFingerprint(prog, 1));
  }
}
BENCHMARK(BM_ProbeFingerprint);

void BM_FullEvaluation(benchmark::State& state) {
  const auto& ds = BenchDataset(64);
  core::Evaluator evaluator(ds, core::EvaluatorConfig{});
  const auto prog = core::MakeNeuralNetAlpha(ds.window());
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.Evaluate(prog, 1, false));
  }
}
BENCHMARK(BM_FullEvaluation);

void BM_Mutation(benchmark::State& state) {
  core::Mutator mutator{core::MutatorConfig{}};
  Rng rng(5);
  core::AlphaProgram prog = core::MakeNeuralNetAlpha(13);
  for (auto _ : state) {
    prog = mutator.Mutate(prog, rng);
    benchmark::DoNotOptimize(prog);
  }
}
BENCHMARK(BM_Mutation);

void BM_GpTreeEvaluation(benchmark::State& state) {
  const auto& ds = BenchDataset(64);
  Rng rng(7);
  const auto tree = ga::RandomTree(rng, ds.num_features(), 6, true);
  const int date = ds.dates(market::Split::kValid)[0];
  for (auto _ : state) {
    double sum = 0;
    for (int k = 0; k < ds.num_tasks(); ++k) {
      sum += tree->Eval(ds.FeatureRow(k, date));
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * ds.num_tasks());
}
BENCHMARK(BM_GpTreeEvaluation);

// --- Serial vs. pooled evolution throughput -------------------------------
// Candidates/sec through the full search pipeline (mutate → prune →
// fingerprint → cache → evaluate → insert/age) for the legacy serial engine
// and the EvaluatorPool-backed engine at 1/2/4/8 threads. The batch width is
// fixed at 16 across thread counts so every run scores the same candidate
// stream and only the parallelism varies; `speedup_vs_serial` is the
// headline number (≥ 2.5x expected at 4 threads on a 4+ core machine).

core::EvolutionConfig MicroEvolutionConfig() {
  core::EvolutionConfig cfg;
  cfg.max_candidates = 400;
  cfg.seed = 11;
  cfg.batch_size = 16;
  return cfg;
}

double g_serial_candidates_per_sec = 0.0;

void BM_EvolutionSerial(benchmark::State& state) {
  const auto& ds = BenchDataset(64);
  core::Evaluator evaluator(ds, core::EvaluatorConfig{});
  core::EvolutionConfig cfg = MicroEvolutionConfig();
  const auto prog = core::MakeExpertAlpha(ds.window());
  int64_t candidates = 0;
  double seconds = 0.0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    core::Evolution evo(evaluator, cfg);
    const core::EvolutionResult r = evo.Run(prog);
    seconds += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    candidates += r.stats.candidates;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(candidates);
  if (seconds > 0.0) {
    g_serial_candidates_per_sec = static_cast<double>(candidates) / seconds;
    state.counters["cands_per_sec"] = g_serial_candidates_per_sec;
  }
}
BENCHMARK(BM_EvolutionSerial)->Unit(benchmark::kMillisecond);

void BM_EvolutionPooled(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const auto& ds = BenchDataset(64);
  core::EvaluatorPool pool(ds, core::EvaluatorConfig{}, threads);
  const core::EvolutionConfig cfg = MicroEvolutionConfig();
  const auto prog = core::MakeExpertAlpha(ds.window());
  int64_t candidates = 0;
  double seconds = 0.0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    core::Evolution evo(pool, cfg);
    const core::EvolutionResult r = evo.Run(prog);
    seconds += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    candidates += r.stats.candidates;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(candidates);
  if (seconds > 0.0) {
    const double cps = static_cast<double>(candidates) / seconds;
    state.counters["cands_per_sec"] = cps;
    if (g_serial_candidates_per_sec > 0.0) {
      state.counters["speedup_vs_serial"] =
          cps / g_serial_candidates_per_sec;
    }
  }
}
BENCHMARK(BM_EvolutionPooled)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- Async pipelined vs synchronous evolution driver (BENCH_5.json) -------
// The same candidate stream (fixed seed + batch width) through the batched
// driver at pipeline depths 0 (synchronous: the driving thread blocks while
// each batch evaluates), 1 (double-buffered: batch N+1 is mutated / pruned /
// fingerprinted while batch N evaluates), and 2. Results are bit-identical
// at every depth (pipelined_evolution_test), so `speedup_vs_sync` — cands/
// sec over the depth-0 run at the same thread count — is pure overlap gain:
// the workers never drain between batches and the generator never idles.
// Thread count comes from AE_BENCH_THREADS (default 4); `cpu_ms_per_cand`
// is the number to read on a 1-core box, where wall overlap cannot show.

std::map<int, double>& SyncDriverCandsPerSec() {
  static auto* baselines = new std::map<int, double>();
  return *baselines;
}

void BM_EvolutionPipelined(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  int threads = 4;
  if (const char* env = std::getenv("AE_BENCH_THREADS")) {
    threads = std::max(1, std::atoi(env));
  }
  const auto& ds = BenchDataset(64);
  core::EvaluatorPool pool(ds, core::EvaluatorConfig{}, threads);
  core::EvolutionConfig cfg = MicroEvolutionConfig();
  cfg.pipeline_depth = depth;
  const auto prog = core::MakeExpertAlpha(ds.window());
  int64_t candidates = 0;
  double seconds = 0.0;
  const std::clock_t cpu0 = std::clock();
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    core::Evolution evo(pool, cfg);
    const core::EvolutionResult r = evo.Run(prog);
    seconds += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    candidates += r.stats.candidates;
    benchmark::DoNotOptimize(r);
  }
  const double cpu_seconds =
      static_cast<double>(std::clock() - cpu0) / CLOCKS_PER_SEC;
  state.SetItemsProcessed(candidates);
  if (seconds > 0.0 && candidates > 0) {
    const double cps = static_cast<double>(candidates) / seconds;
    state.counters["cands_per_sec"] = cps;
    state.counters["cpu_ms_per_cand"] =
        1e3 * cpu_seconds / static_cast<double>(candidates);
    if (depth == 0) {
      SyncDriverCandsPerSec()[threads] = cps;
    } else if (SyncDriverCandsPerSec().count(threads) > 0) {
      state.counters["speedup_vs_sync"] =
          cps / SyncDriverCandsPerSec()[threads];
    }
  }
}
BENCHMARK(BM_EvolutionPipelined)
    ->Arg(0)  // synchronous baseline registers first
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- Telemetry overhead on the mining hot path (BENCH_8.json) -------------
// The same pipelined mining run (depth 1, fixed seed + batch width) with the
// obs layer in its three states: 0 = disabled (every instrumented site is a
// relaxed load + branch), 1 = counters/histograms on, 2 = full span tracing
// on top. Results are bit-identical across modes (telemetry_parity_test), so
// `overhead_pct` — throughput lost vs the disabled run at the same thread
// count, registered first — is the whole price of observation. Acceptance:
// full tracing stays under 5%. Thread count from AE_BENCH_THREADS (def. 4).

std::map<int, double>& TelemetryOffCandsPerSec() {
  static auto* baselines = new std::map<int, double>();
  return *baselines;
}

void BM_TelemetryOverhead(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  int threads = 4;
  if (const char* env = std::getenv("AE_BENCH_THREADS")) {
    threads = std::max(1, std::atoi(env));
  }
  const auto& ds = BenchDataset(64);
  core::EvaluatorPool pool(ds, core::EvaluatorConfig{}, threads);
  core::EvolutionConfig cfg = MicroEvolutionConfig();
  cfg.pipeline_depth = 0;  // TEMP-EXPERIMENT
  cfg.telemetry.enabled = mode >= 1;
  cfg.telemetry.tracing = mode >= 2;
  obs::Configure(cfg.telemetry);  // Run() only applies enabled configs
  const auto prog = core::MakeExpertAlpha(ds.window());
  int64_t candidates = 0;
  double seconds = 0.0;
  for (auto _ : state) {
    // Keep snapshot/export cost out of the loop but the recording cost in;
    // clearing also stops the trace rings from carrying events across runs.
    obs::MetricsRegistry::Default().Reset();
    obs::TraceRecorder::Default().Clear();
    const auto t0 = std::chrono::steady_clock::now();
    core::Evolution evo(pool, cfg);
    const core::EvolutionResult r = evo.Run(prog);
    seconds += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    candidates += r.stats.candidates;
    benchmark::DoNotOptimize(r);
  }
  obs::Configure(obs::TelemetryConfig{});  // leave the process telemetry-off
  obs::MetricsRegistry::Default().Reset();
  obs::TraceRecorder::Default().Clear();
  state.SetItemsProcessed(candidates);
  if (seconds > 0.0 && candidates > 0) {
    const double cps = static_cast<double>(candidates) / seconds;
    state.counters["cands_per_sec"] = cps;
    if (mode == 0) {
      TelemetryOffCandsPerSec()[threads] = cps;
    } else if (TelemetryOffCandsPerSec().count(threads) > 0) {
      state.counters["overhead_pct"] =
          100.0 * (1.0 - cps / TelemetryOffCandsPerSec()[threads]);
    }
  }
}
BENCHMARK(BM_TelemetryOverhead)
    ->Arg(0)  // disabled baseline registers first
    ->Arg(1)  // counters + histograms
    ->Arg(2)  // + span tracing
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- Checkpointing overhead (BENCH_9.json) --------------------------------
// The crash-tolerance tax: one full mining search with snapshots off
// (mode 0, baseline), at the default every-8-batches cadence (mode 1), and
// at the pathological every-batch cadence (mode 2). Snapshots serialize the
// whole committed state (population, RNG, counters, fingerprint cache) and
// publish through temp file + fsync + atomic rename, so `write_ms` is
// dominated by the fsyncs; `overhead_pct` is the end-to-end mining slowdown
// versus mode 0 — the acceptance bar is < 3% at the default cadence.

// Baseline cands/sec with checkpointing off, keyed by thread count; the
// mean over every mode-0 repetition so far, so a single noisy baseline rep
// can't swing the overhead_pct of the checkpointed modes.
std::map<int, std::pair<double, int>>& CheckpointOffCandsPerSec() {
  static auto* baseline = new std::map<int, std::pair<double, int>>();
  return *baseline;
}

void BM_CheckpointOverhead(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  int threads = 4;
  if (const char* env = std::getenv("AE_BENCH_THREADS")) {
    threads = std::max(1, std::atoi(env));
  }
  const auto& ds = BenchDataset(64);
  core::EvaluatorPool pool(ds, core::EvaluatorConfig{}, threads);
  core::EvolutionConfig cfg = MicroEvolutionConfig();
  // The synchronous driver: it is the semantic reference every snapshot
  // equals by construction (pipelined drivers drain to exactly its states
  // before capturing), so it isolates the checkpoint machinery's cost —
  // capture + serialize + background publish — from the pipeline-refill
  // bubble a depth>0 drain adds per snapshot. That policy cost is bounded
  // by BM_EvolutionPipelined's depth gain and shrinks with real batch
  // durations (this micro-workload commits a batch every ~10ms; paper-scale
  // runs take seconds per batch, making the bubble noise).
  cfg.pipeline_depth = 0;
  // A longer run than the other micro-benches: the trailing Flush() below is
  // a fixed per-run cost (one fsync), and a ~100ms run would let that drain
  // dominate the overhead number instead of the steady-state publish cost.
  cfg.max_candidates = 1600;
  const auto prog = core::MakeExpertAlpha(ds.window());
  const std::string dir =
      (std::filesystem::temp_directory_path() / "ae_bench_ckpt").string();

  int64_t candidates = 0;
  int64_t generations = 0;
  int64_t snapshot_bytes = 0;
  double write_seconds = 0.0;
  double seconds = 0.0;
  for (auto _ : state) {
    // A fresh writer per run keeps its counters per-iteration; sweeping the
    // stream afterwards keeps generation numbering (and disk use) bounded.
    ckpt::WriterOptions options;
    options.every_batches = mode == 1 ? 8 : 1;
    options.keep = 2;
    ckpt::CheckpointWriter writer(dir, "bench", options);
    const auto t0 = std::chrono::steady_clock::now();
    core::Evolution evo(pool, cfg);
    if (mode >= 1) evo.UseCheckpointSink(&writer);
    const core::EvolutionResult r = evo.Run(prog);
    // Charge the trailing drain to the run: durability of the last snapshot
    // is part of the cost being measured.
    writer.Flush();
    seconds += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    candidates += r.stats.candidates;
    generations += writer.generations_written();
    snapshot_bytes = writer.last_snapshot_bytes();
    write_seconds += writer.total_write_seconds();
    ckpt::RemoveCheckpoints(dir, "bench");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(candidates);
  if (seconds > 0.0 && candidates > 0) {
    const double cps = static_cast<double>(candidates) / seconds;
    state.counters["cands_per_sec"] = cps;
    if (mode == 0) {
      auto& [sum, n] = CheckpointOffCandsPerSec()[threads];
      sum += cps;
      ++n;
    } else if (CheckpointOffCandsPerSec().count(threads) > 0) {
      const auto& [sum, n] = CheckpointOffCandsPerSec()[threads];
      state.counters["overhead_pct"] = 100.0 * (1.0 - cps * n / sum);
    }
  }
  if (mode >= 1) {
    state.counters["snapshot_bytes"] = static_cast<double>(snapshot_bytes);
    if (generations > 0) {
      state.counters["write_ms"] =
          1e3 * write_seconds / static_cast<double>(generations);
    }
  }
}
BENCHMARK(BM_CheckpointOverhead)
    ->Arg(0)  // no checkpointing: the baseline registers first
    ->Arg(1)  // every 8 batches (the default cadence)
    ->Arg(2)  // every batch (worst case)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- Scenario-suite robustness throughput ---------------------------------
// Fans a 2-alpha set across the standard regime suite (BENCH_3.json): each
// (alpha, scenario) cell is a full evaluation on that scenario's dataset,
// work-stolen by `threads` workers. Construction (dataset materialization,
// per-scenario pools) happens outside the timing loop; `scenarios_per_sec`
// counts scored cells, `speedup_vs_serial` compares against the 1-thread
// run (registered first). Reports are bit-identical across thread counts
// (see scenario_test), so this measures pure fan-out gain over a serial
// scenario sweep.

double g_robustness_serial_cells_per_sec = 0.0;

void BM_RobustnessSuite(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  market::MarketConfig mc = market::MarketConfig::BenchScale();
  mc.num_stocks = 64;
  mc.num_days = 300;
  mc.seed = 11;
  scenario::ScenarioSuite suite = scenario::ScenarioSuite::Standard(mc, 77);
  scenario::RobustnessConfig rc;
  rc.evaluator.costs.per_side_bps = 10.0;
  rc.num_threads = threads;
  scenario::RobustnessEvaluator evaluator(std::move(suite), rc);

  std::vector<core::AcceptedAlpha> set(2);
  set[0].name = "expert";
  set[0].program = core::MakeExpertAlpha(market::kNumFeatures);
  set[1].name = "nn";
  set[1].program = core::MakeNeuralNetAlpha(market::kNumFeatures);
  const int64_t cells_per_run =
      static_cast<int64_t>(set.size()) * evaluator.suite().num_scenarios();

  int64_t cells = 0;
  double seconds = 0.0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(evaluator.EvaluateSet(set));
    seconds += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    cells += cells_per_run;
  }
  state.SetItemsProcessed(cells);
  if (seconds > 0.0) {
    const double cps = static_cast<double>(cells) / seconds;
    state.counters["scenarios_per_sec"] = cps;
    if (threads == 1) {
      g_robustness_serial_cells_per_sec = cps;
    } else if (g_robustness_serial_cells_per_sec > 0.0) {
      state.counters["speedup_vs_serial"] =
          cps / g_robustness_serial_cells_per_sec;
    }
  }
}
BENCHMARK(BM_RobustnessSuite)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- Stress-in-the-loop mining throughput (BENCH_7.json) ------------------
// Evolution with ScenarioFitness over the full 7-regime standard suite:
// every surviving candidate is scored on all regimes, served either as lazy
// copy-on-write overlay views of one shared panel or as fully materialized
// per-regime panels (bit-identical fitness either way — panel_overlay_test).
// Args are (panel mode, screen): mode 0 = lazy overlays, 1 = materialized;
// screen 0 = every valid candidate pays the full regime fan-out, 1 = the
// cheap-first baseline screen (ic_valid < 0) rejects before fanning out.
// `panel_resident_bytes` and `mem_ratio_vs_materialized` give the headline
// memory win; `speedup_vs_no_screen` (same panel mode, screen-off run
// registered first) gives the screening win; `scenario_evals_per_cand`
// shows where it comes from (fewer regime evaluations per candidate).
// Thread count comes from AE_BENCH_THREADS (default 4).

scenario::ScenarioSuite ScenarioBenchSuite() {
  market::MarketConfig mc = market::MarketConfig::BenchScale();
  mc.num_stocks = 64;
  mc.num_days = 300;
  mc.seed = 11;
  return scenario::ScenarioSuite::Standard(mc, 77);
}

std::map<int, double>& ScreenOffCandsPerSec() {
  static auto* baselines = new std::map<int, double>();
  return *baselines;
}

void BM_ScenarioFitness(benchmark::State& state) {
  const bool materialized = state.range(0) != 0;
  const bool screen = state.range(1) != 0;
  int threads = 4;
  if (const char* env = std::getenv("AE_BENCH_THREADS")) {
    threads = std::max(1, std::atoi(env));
  }
  core::ScenarioFitnessOptions options;
  options.cheap_first_screen = screen;
  // Construction — one base simulation, plus the 7-panel copy in
  // materialized mode — happens outside the timing loop.
  ThreadPool build_pool(threads);
  scenario::ScenarioFitness scorer(
      ScenarioBenchSuite(), market::DatasetConfig{}, core::EvaluatorConfig{},
      options,
      materialized ? scenario::PanelOverlay::Mode::kMaterialized
                   : scenario::PanelOverlay::Mode::kLazy,
      &build_pool);
  core::EvaluatorPool pool(scorer.baseline_panel(), core::EvaluatorConfig{},
                           threads);
  scorer.set_fanout_pool(pool.thread_pool());
  core::EvolutionConfig cfg = MicroEvolutionConfig();
  cfg.max_candidates = 200;  // each survivor costs up to 7 evaluations
  const auto prog = core::MakeExpertAlpha(market::kNumFeatures);

  int64_t candidates = 0, evaluated = 0, scenario_evals = 0;
  double seconds = 0.0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    core::Evolution evo(pool, cfg);
    evo.UseCandidateScorer(&scorer);
    const core::EvolutionResult r = evo.Run(prog);
    seconds += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    candidates += r.stats.candidates;
    evaluated += r.stats.evaluated;
    scenario_evals += r.stats.scenario_evals;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(candidates);
  const double resident =
      static_cast<double>(scorer.panels().ResidentBytes());
  state.counters["panel_resident_bytes"] = resident;
  // The materialized footprint is the same number the materialized-mode run
  // reports; computing it here lets the lazy rows carry the ratio directly.
  {
    scenario::PanelOverlay full(ScenarioBenchSuite(), market::DatasetConfig{},
                                scenario::PanelOverlay::Mode::kMaterialized,
                                &build_pool);
    state.counters["mem_ratio_vs_materialized"] =
        static_cast<double>(full.ResidentBytes()) / resident;
  }
  if (evaluated > 0) {
    state.counters["scenario_evals_per_cand"] =
        static_cast<double>(scenario_evals) / static_cast<double>(evaluated);
  }
  if (seconds > 0.0 && candidates > 0) {
    const double cps = static_cast<double>(candidates) / seconds;
    state.counters["cands_per_sec"] = cps;
    const int mode_key = materialized ? 1 : 0;
    if (!screen) {
      ScreenOffCandsPerSec()[mode_key] = cps;
    } else if (ScreenOffCandsPerSec().count(mode_key) > 0) {
      state.counters["speedup_vs_no_screen"] =
          cps / ScreenOffCandsPerSec()[mode_key];
    }
  }
}
BENCHMARK(BM_ScenarioFitness)
    ->Args({0, 0})  // lazy overlays, screen off: the baseline registers first
    ->Args({0, 1})  // lazy overlays, cheap-first screen
    ->Args({1, 0})  // materialized panels, screen off
    ->Args({1, 1})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- Resident-service op throughput (BENCH_10.json) -----------------------
// The alpha service's request path end to end — parse -> admission -> bounded
// queue -> worker dispatch -> JSON response — against a live service with one
// mined alpha resident. Modes: 0 = job_status (pure supervisor read), 1 =
// signals (cached prediction lookup), 2 = submit + cancel round trip (intake,
// spec validation, supervisor enqueue, token flip). `req_per_sec` is the
// steady-state rate through the queue; `p50_us`/`p99_us` come from the
// service.op_micros histogram the op workers feed, so they measure the same
// queue-to-response latency a daemon client would see.

service::AlphaService& BenchService() {
  static service::AlphaService* svc = [] {
    service::ServiceOptions options;
    options.num_stocks = 24;
    options.num_days = 220;
    options.data_seed = 13;
    options.eval_threads = 2;
    options.op_workers = 2;
    options.default_job.max_candidates = 32;
    options.default_job.batch_size = 8;
    auto* s = new service::AlphaService(options);
    // Mine one tiny alpha so status/signals lookups have a DONE job to hit.
    s->Call(R"({"op":"submit_search","id":"seed","params":{"seed":7}})");
    while (s->Call(R"({"op":"job_status","id":"w","params":{"job":"job-1"}})")
               .find("\"state\":\"done\"") == std::string::npos) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    // First signals call pays the full prediction-matrix execution; warm it
    // here so the benched path is the cached lookup a resident daemon serves.
    s->Call(
        R"({"op":"signals","id":"warm","params":{"job":"job-1","date":0}})");
    return s;
  }();
  return *svc;
}

void BM_ServiceOps(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  service::AlphaService& service = BenchService();
  obs::TelemetryConfig telemetry;
  telemetry.enabled = true;
  obs::Configure(telemetry);
  obs::MetricsRegistry::Default().Reset();

  int64_t ops = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    if (mode == 0) {
      benchmark::DoNotOptimize(service.Call(
          R"({"op":"job_status","id":"b","params":{"job":"job-1"}})"));
      ++ops;
    } else if (mode == 1) {
      benchmark::DoNotOptimize(service.Call(
          R"({"op":"signals","id":"b","params":{"job":"job-1","date":3}})"));
      ++ops;
    } else {
      // Submit a real spec, then cancel the pending job so the supervisor's
      // ready queue stays bounded however many iterations the runner picks.
      const std::string submitted = service.Call(
          R"({"op":"submit_search","id":"b","params":{"seed":3}})");
      const std::string job = alphaevolve::JsonValue::Parse(submitted)
                                  .At("result").At("job").AsString();
      benchmark::DoNotOptimize(service.Call(
          R"({"op":"cancel_job","id":"b2","params":{"job":")" + job +
          R"("}})"));
      ops += 2;
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  state.SetItemsProcessed(ops);
  if (seconds > 0.0 && ops > 0) {
    state.counters["req_per_sec"] = static_cast<double>(ops) / seconds;
  }
  const obs::Histogram& op_micros =
      obs::MetricsRegistry::Default().GetHistogram("service.op_micros");
  state.counters["p50_us"] = op_micros.Quantile(0.5);
  state.counters["p99_us"] = op_micros.Quantile(0.99);
  obs::Configure(obs::TelemetryConfig{});
  obs::MetricsRegistry::Default().Reset();
}
BENCHMARK(BM_ServiceOps)
    ->Arg(0)  // job_status
    ->Arg(1)  // signals (cached)
    ->Arg(2)  // submit + cancel
    ->UseRealTime();

void BM_MarketSimulation(benchmark::State& state) {
  for (auto _ : state) {
    market::MarketConfig mc = market::MarketConfig::BenchScale();
    mc.num_stocks = static_cast<int>(state.range(0));
    mc.num_days = 300;
    mc.seed = 1;
    benchmark::DoNotOptimize(market::Dataset::Simulate(mc, {}));
  }
}
BENCHMARK(BM_MarketSimulation)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main: stamps the kernel-variant context (detected by CPUID, active
// after the AE_KERNEL_VARIANT override, compiled into this binary) into the
// benchmark JSON so a committed BENCH record states which ISA produced it,
// and registers the per-variant matmul benchmarks for exactly the variants
// this host can run.
int main(int argc, char** argv) {
  namespace core = alphaevolve::core;
  benchmark::AddCustomContext(
      "ae_kernel_variant_detected",
      core::KernelVariantName(core::DetectKernelVariant()));
  benchmark::AddCustomContext("ae_kernel_variant_active",
                              core::ResolveKernelTable("").name);
  std::string compiled;
  for (const core::KernelVariant v : core::CompiledKernelVariants()) {
    if (!compiled.empty()) compiled += ",";
    compiled += core::KernelVariantName(v);
  }
  benchmark::AddCustomContext("ae_kernel_variants_compiled", compiled);
  RegisterDispatchedMatMul();

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

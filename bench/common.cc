#include "common.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <limits>

#include "eval/metrics.h"
#include "util/table.h"

namespace aebench {
namespace {

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atof(v);
}

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atoi(v);
}

}  // namespace

BenchOptions BenchOptions::FromEnv() {
  BenchOptions opt;
  opt.num_stocks = EnvInt("AE_BENCH_STOCKS", opt.num_stocks);
  opt.num_days = EnvInt("AE_BENCH_DAYS", opt.num_days);
  opt.market_seed =
      static_cast<uint64_t>(EnvInt("AE_BENCH_SEED",
                                   static_cast<int>(opt.market_seed)));
  opt.search_seconds = EnvDouble("AE_BENCH_TIME", opt.search_seconds);
  opt.rounds = EnvInt("AE_BENCH_ROUNDS", opt.rounds);
  opt.num_threads = std::max(1, EnvInt("AE_BENCH_THREADS", opt.num_threads));
  opt.intra_threads =
      std::max(1, EnvInt("AE_BENCH_INTRA_THREADS", opt.intra_threads));
  opt.fuse_segments = EnvInt("AE_BENCH_FUSE", 1) != 0;
  opt.block_size = std::max(0, EnvInt("AE_BENCH_BLOCK", opt.block_size));
  opt.pipeline_depth =
      std::max(0, EnvInt("AE_BENCH_PIPELINE", opt.pipeline_depth));
  opt.full = EnvInt("AE_BENCH_FULL", 0) != 0;
  if (opt.full) {
    // Paper-scale universe and calendar (§5.1); budgets stay time-bounded.
    opt.num_stocks = 1140;
    opt.num_days = 1260;
  }
  return opt;
}

market::Dataset MakeBenchDataset(const BenchOptions& opt) {
  market::MarketConfig mc = market::MarketConfig::BenchScale();
  mc.num_stocks = opt.num_stocks;
  mc.num_days = opt.num_days;
  mc.seed = opt.market_seed;
  // Calibrated so the best evolved alphas reach IC ≈ 0.05–0.10 and the
  // GA/expert baselines sit below (see DESIGN.md).
  mc.mean_reversion_strength = 0.03;
  mc.momentum_strength = 0.05;
  // Sector rotation late in the training period: static learned relation
  // graphs go stale by test time (the paper's §5.4.3 failure mode for RSR).
  mc.relation_break_fraction = 0.6;
  market::DatasetConfig dc;
  if (!opt.full) {
    // At bench scale the paper's 81/9.5/9.5 split leaves too few validation
    // days for a stable fitness/selection signal; widen to 70/15/15.
    dc.train_fraction = 0.65;
    dc.valid_fraction = 0.20;
  }
  return market::Dataset::Simulate(mc, dc);
}

core::EvaluatorConfig MakeEvaluatorConfig(const BenchOptions& opt) {
  core::EvaluatorConfig cfg;
  cfg.executor.intra_candidate_threads = opt.intra_threads;
  cfg.executor.fuse_segments = opt.fuse_segments;
  cfg.executor.block_size = opt.block_size;
  return cfg;
}

core::EvolutionConfig MakeEvolutionConfig(const BenchOptions& opt,
                                          uint64_t seed) {
  core::EvolutionConfig cfg;
  cfg.population_size = 100;   // §5.2
  cfg.tournament_size = 10;    // §5.2
  cfg.max_candidates = 0;      // time-bounded, like the paper's 60 h rounds
  cfg.time_budget_seconds = opt.search_seconds;
  cfg.seed = seed;
  cfg.num_threads = opt.num_threads;  // batch size auto: 4x threads
  cfg.intra_candidate_threads = opt.intra_threads;  // task shards / candidate
  cfg.fuse_segments = opt.fuse_segments ? 1 : 0;
  cfg.block_size = opt.block_size;
  cfg.pipeline_depth = opt.pipeline_depth;  // overlap generation/evaluation
  return cfg;
}

ga::GaConfig MakeGaConfig(const BenchOptions& opt, uint64_t seed) {
  ga::GaConfig cfg;  // §5.2 probabilities are the defaults
  cfg.max_candidates = 0;
  cfg.time_budget_seconds = opt.search_seconds;
  cfg.seed = seed;
  return cfg;
}

RoundOutcome RunRoundBestOfInits(core::WeaklyCorrelatedMiner& miner,
                                 const std::vector<core::InitKind>& inits,
                                 uint64_t seed) {
  RoundOutcome out;
  core::Mutator mutator{core::MutatorConfig{}};
  // One search per initialization; pool-backed miners run them concurrently.
  std::vector<core::WeaklyCorrelatedMiner::SearchSpec> specs;
  for (size_t i = 0; i < inits.size(); ++i) {
    alphaevolve::Rng rng(seed * 977 + i);
    specs.push_back({core::MakeInitialAlpha(inits[i], mutator, rng),
                     seed + i});
  }
  std::vector<core::EvolutionResult> results = miner.RunSearches(specs);
  double best_sharpe = -1e30;
  for (size_t i = 0; i < inits.size(); ++i) {
    core::EvolutionResult& r = results[i];
    if (r.has_alpha && r.best_metrics.sharpe_valid > best_sharpe) {
      best_sharpe = r.best_metrics.sharpe_valid;
      out.has_alpha = true;
      out.init = inits[i];
      out.result = r;
    }
    out.per_init.push_back(std::move(r));
  }
  return out;
}

core::EvolutionResult RunRoundFrom(core::WeaklyCorrelatedMiner& miner,
                                   const core::AlphaProgram& init,
                                   uint64_t seed) {
  return miner.RunSearch(init, seed);
}

namespace {

StudyRow MakeRow(std::string name, const core::EvolutionResult& r,
                 const core::WeaklyCorrelatedMiner& miner) {
  StudyRow row;
  row.name = std::move(name);
  row.has_alpha = r.has_alpha;
  row.stats = r.stats;
  row.trajectory = r.trajectory;
  if (r.has_alpha) {
    row.sharpe_test = r.best_metrics.sharpe_test;
    row.ic_test = r.best_metrics.ic_test;
    row.sharpe_valid = r.best_metrics.sharpe_valid;
    row.ic_valid = r.best_metrics.ic_valid;
    row.corr = miner.CorrelationWithAccepted(r.best_metrics);
    row.program = r.best;
    row.metrics = r.best_metrics;
  }
  return row;
}

AeStudyResult RunAeStudyWithMiner(core::WeaklyCorrelatedMiner& miner,
                                  const BenchOptions& opt) {
  const std::vector<core::InitKind> inits = {
      core::InitKind::kExpert, core::InitKind::kNoOp, core::InitKind::kRandom,
      core::InitKind::kNeuralNet};
  core::Mutator mutator{core::MutatorConfig{}};
  AeStudyResult study;

  for (int round = 0; round < opt.rounds; ++round) {
    const bool final_round =
        round == opt.rounds - 1 && !miner.accepted().empty();
    // Each round is one multi-seed batch of searches against the same
    // accepted set; a pool-backed miner runs them concurrently.
    std::vector<core::WeaklyCorrelatedMiner::SearchSpec> specs;
    std::vector<std::string> names;
    if (!final_round) {
      for (size_t i = 0; i < inits.size(); ++i) {
        alphaevolve::Rng rng(static_cast<uint64_t>(round) * 977 + i);
        specs.push_back({core::MakeInitialAlpha(inits[i], mutator, rng),
                         static_cast<uint64_t>(round) * 100 + i});
        names.push_back("alpha_AE_" +
                        std::string(core::InitKindName(inits[i])) + "_" +
                        std::to_string(round));
      }
    } else {
      // The paper's last round: previous best alphas as initializations.
      const auto accepted_copy = miner.accepted();  // stable during round
      for (size_t j = 0; j < accepted_copy.size(); ++j) {
        specs.push_back({accepted_copy[j].program,
                         static_cast<uint64_t>(round) * 100 + j});
        names.push_back("alpha_AE_B" + std::to_string(j) + "_" +
                        std::to_string(round));
      }
    }
    const std::vector<core::EvolutionResult> results =
        miner.RunSearches(specs);
    std::vector<StudyRow> rows;
    for (size_t i = 0; i < results.size(); ++i) {
      rows.push_back(MakeRow(names[i], results[i], miner));
    }
    // Round winner by validation Sharpe (paper §5.4.1).
    int best = -1;
    for (size_t i = 0; i < rows.size(); ++i) {
      if (rows[i].has_alpha &&
          (best < 0 || rows[i].sharpe_valid >
                           rows[static_cast<size_t>(best)].sharpe_valid)) {
        best = static_cast<int>(i);
      }
    }
    if (best >= 0) {
      StudyRow& winner = rows[static_cast<size_t>(best)];
      winner.accepted = true;
      miner.Accept(winner.name, winner.program, winner.metrics);
      study.accepted_names.push_back(winner.name);
    }
    study.rounds.push_back(std::move(rows));
  }
  study.accepted = miner.accepted();
  return study;
}

}  // namespace

AeStudyResult RunAeStudy(core::Evaluator& evaluator, const BenchOptions& opt) {
  core::WeaklyCorrelatedMiner miner(evaluator,
                                    MakeEvolutionConfig(opt, /*seed=*/1));
  return RunAeStudyWithMiner(miner, opt);
}

AeStudyResult RunAeStudy(core::EvaluatorPool& pool, const BenchOptions& opt) {
  core::WeaklyCorrelatedMiner miner(pool, MakeEvolutionConfig(opt, /*seed=*/1));
  return RunAeStudyWithMiner(miner, opt);
}

std::vector<GaStudyRow> RunGaStudy(const market::Dataset& dataset,
                                   const BenchOptions& opt) {
  std::vector<GaStudyRow> rows;
  std::vector<std::vector<double>> accepted_returns;
  int consecutive_bad = 0;
  for (int round = 0; round < opt.rounds; ++round) {
    GaStudyRow row;
    row.name = "alpha_G_" + std::to_string(round);
    if (consecutive_bad >= 2) {
      rows.push_back(row);  // NA row: search abandoned, as in the paper
      continue;
    }
    ga::GeneticAlgorithm search(dataset,
                                MakeGaConfig(opt, 500 + round),
                                accepted_returns);
    const ga::GaResult r = search.Run();
    row.searched = r.stats.candidates;
    if (r.has_alpha) {
      row.has_alpha = true;
      row.sharpe_test = r.sharpe_test;
      row.ic_test = r.ic_test;
      row.sharpe_valid =
          alphaevolve::eval::SharpeRatio(r.valid_portfolio_returns);
      row.ic_valid = r.best_fitness;
      double best_abs = -1.0;
      for (const auto& acc : accepted_returns) {
        const double c = alphaevolve::eval::PortfolioCorrelation(
            r.valid_portfolio_returns, acc);
        if (std::abs(c) > best_abs) {
          best_abs = std::abs(c);
          row.corr = c;
        }
      }
      if (accepted_returns.empty()) {
        row.corr = std::numeric_limits<double>::quiet_NaN();
      }
      accepted_returns.push_back(r.valid_portfolio_returns);
      consecutive_bad = r.sharpe_test <= 0.0 ? consecutive_bad + 1 : 0;
    } else {
      ++consecutive_bad;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string Num(double v) { return alphaevolve::TablePrinter::Num(v); }

std::string Corr(double v) {
  if (std::isnan(v)) return "NA";
  return alphaevolve::TablePrinter::Num(v);
}

void PrintBanner(const char* title, const BenchOptions& opt,
                 const market::Dataset& dataset) {
  std::printf("=== %s ===\n", title);
  std::printf(
      "synthetic NASDAQ: %d tasks x %d days "
      "(%zu train / %zu valid / %zu test), market seed %llu, "
      "%.1fs per search, %d thread%s, %d task shard%s%s\n\n",
      dataset.num_tasks(), dataset.num_days(),
      dataset.dates(market::Split::kTrain).size(),
      dataset.dates(market::Split::kValid).size(),
      dataset.dates(market::Split::kTest).size(),
      static_cast<unsigned long long>(opt.market_seed), opt.search_seconds,
      opt.num_threads, opt.num_threads == 1 ? "" : "s", opt.intra_threads,
      opt.intra_threads == 1 ? "" : "s", opt.full ? " [FULL]" : "");
}

std::string ResultsDir() {
  const std::string dir = "bench_results";
  std::filesystem::create_directories(dir);
  return dir;
}

}  // namespace aebench

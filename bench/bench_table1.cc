// Table 1 — "Mining weakly correlated alpha with an existing
// domain-expert-designed alpha": the expert alpha alpha_D_0, the evolved
// alpha_AE_D_0 and the genetic-algorithm alpha_G_0, with the 15% cutoff set
// against alpha_D_0. Expected shape (paper): both miners beat the expert
// alpha by a wide margin while staying weakly correlated with it;
// AlphaEvolve beats the genetic algorithm.

#include <iostream>

#include "common.h"
#include "core/evaluator.h"
#include "eval/metrics.h"
#include "util/table.h"

using namespace aebench;

int main() {
  const BenchOptions opt = BenchOptions::FromEnv();
  const market::Dataset dataset = MakeBenchDataset(opt);
  PrintBanner("Table 1: mining vs an existing expert alpha", opt, dataset);

  core::Evaluator evaluator(dataset, core::EvaluatorConfig{});

  // The existing alpha: the domain-expert design, evaluated as-is.
  const core::AlphaProgram expert = core::MakeExpertAlpha(dataset.window());
  const core::AlphaMetrics expert_metrics = evaluator.Evaluate(expert, 1);

  // Both miners run with the cutoff set against alpha_D_0.
  core::WeaklyCorrelatedMiner miner(evaluator, MakeEvolutionConfig(opt, 1));
  miner.Accept("alpha_D_0", expert, expert_metrics);

  const core::EvolutionResult ae = RunRoundFrom(miner, expert, /*seed=*/101);

  std::vector<std::vector<double>> cutoff = {
      expert_metrics.valid_portfolio_returns};
  ga::GeneticAlgorithm ga_search(dataset, MakeGaConfig(opt, 101), cutoff);
  const ga::GaResult ga = ga_search.Run();

  // Primary columns follow the paper's S_v-based machinery (Eq. 1 fitness,
  // cutoff); the last two columns show held-out test metrics.
  alphaevolve::TablePrinter table(
      {"Alpha", "Sharpe ratio", "IC", "Correlation with the existing alpha",
       "Sharpe (test)", "IC (test)"});
  table.AddRow({"alpha_D_0", Num(expert_metrics.sharpe_valid),
                Num(expert_metrics.ic_valid), "NA",
                Num(expert_metrics.sharpe_test),
                Num(expert_metrics.ic_test)});
  if (ae.has_alpha) {
    table.AddRow({"alpha_AE_D_0", Num(ae.best_metrics.sharpe_valid),
                  Num(ae.best_metrics.ic_valid),
                  Corr(miner.CorrelationWithAccepted(ae.best_metrics)),
                  Num(ae.best_metrics.sharpe_test),
                  Num(ae.best_metrics.ic_test)});
  } else {
    table.AddRow({"alpha_AE_D_0", "NA", "NA", "NA", "NA", "NA"});
  }
  if (ga.has_alpha) {
    const double corr = alphaevolve::eval::PortfolioCorrelation(
        ga.valid_portfolio_returns, expert_metrics.valid_portfolio_returns);
    table.AddRow({"alpha_G_0",
                  Num(alphaevolve::eval::SharpeRatio(
                      ga.valid_portfolio_returns)),
                  Num(ga.best_fitness), Corr(corr), Num(ga.sharpe_test),
                  Num(ga.ic_test)});
  } else {
    table.AddRow({"alpha_G_0", "NA", "NA", "NA", "NA", "NA"});
  }
  table.Print(std::cout);

  std::printf("\nsearched alphas: AE=%lld (evaluated %lld, pruned %lld, "
              "cache hits %lld) GA=%lld\n",
              static_cast<long long>(ae.stats.candidates),
              static_cast<long long>(ae.stats.evaluated),
              static_cast<long long>(ae.stats.pruned_redundant),
              static_cast<long long>(ae.stats.cache_hits),
              static_cast<long long>(ga.stats.candidates));
  if (ae.has_alpha) {
    std::printf("\n--- alpha_AE_D_0 (evolved program) ---\n%s",
                ae.best.ToString().c_str());
  }
  return 0;
}

// Table 6 — "Efficiency of the pruning technique": each mining round is run
// twice under the same wall-clock budget — once with the paper's
// redundancy-pruning + evaluation-free structural fingerprint, once with
// the AutoML-Zero prediction fingerprint (`*_N`), which must evaluate a
// probe before it can deduplicate and never prunes. Expected shape (paper):
// the pruned search covers several times more candidate alphas per unit
// time and mines better alphas.

#include <cmath>
#include <iostream>
#include <limits>

#include "common.h"
#include "core/evaluator_pool.h"
#include "util/table.h"

using namespace aebench;

int main() {
  const BenchOptions opt = BenchOptions::FromEnv();
  const market::Dataset dataset = MakeBenchDataset(opt);
  PrintBanner("Table 6: pruning-technique efficiency", opt, dataset);

  core::EvaluatorPool pool(dataset, MakeEvaluatorConfig(opt),
                           opt.num_threads);

  core::EvolutionConfig pruned_cfg = MakeEvolutionConfig(opt, 1);
  core::EvolutionConfig nofp_cfg = pruned_cfg;
  nofp_cfg.use_pruning = false;

  core::WeaklyCorrelatedMiner miner(pool, pruned_cfg);
  core::Mutator mutator{core::MutatorConfig{}};
  const core::InitKind kInits[] = {
      core::InitKind::kExpert, core::InitKind::kNeuralNet,
      core::InitKind::kRandom, core::InitKind::kExpert,
      core::InitKind::kExpert};

  alphaevolve::TablePrinter table({"Alpha", "Sharpe ratio", "IC",
                                   "Correlation", "Number of searched alphas"});
  int64_t total_pruned = 0, total_nofp = 0;
  for (int round = 0; round < opt.rounds; ++round) {
    alphaevolve::Rng rng(static_cast<uint64_t>(round) * 31 + 7);
    const core::AlphaProgram init =
        round == opt.rounds - 1 && !miner.accepted().empty()
            ? miner.accepted().front().program
            : core::MakeInitialAlpha(kInits[round % 5], mutator, rng);
    const std::string base =
        round == opt.rounds - 1 && !miner.accepted().empty()
            ? "alpha_AE_B0_" + std::to_string(round)
            : "alpha_AE_" +
                  std::string(core::InitKindName(kInits[round % 5])) + "_" +
                  std::to_string(round);

    // With pruning (the paper's technique).
    core::EvolutionResult with = miner.RunSearch(init, 700 + round);
    total_pruned += with.stats.candidates;
    if (with.has_alpha) {
      table.AddRow({base, Num(with.best_metrics.sharpe_valid),
                    Num(with.best_metrics.ic_valid),
                    Corr(miner.CorrelationWithAccepted(with.best_metrics)),
                    std::to_string(with.stats.candidates)});
    } else {
      table.AddRow({base, "NA", "NA", "NA",
                    std::to_string(with.stats.candidates)});
    }

    // Without pruning: prediction fingerprint, same accepted set & budget.
    std::vector<std::vector<double>> accepted_returns;
    for (const auto& a : miner.accepted()) {
      accepted_returns.push_back(a.metrics.valid_portfolio_returns);
    }
    core::EvolutionConfig cfg = nofp_cfg;
    cfg.seed = 700 + round;
    core::Evolution nofp(pool, cfg, accepted_returns);
    const core::EvolutionResult without = nofp.Run(init);
    total_nofp += without.stats.candidates;
    double corr_n = std::numeric_limits<double>::quiet_NaN();
    if (without.has_alpha) {
      corr_n = miner.CorrelationWithAccepted(without.best_metrics);
      table.AddRow({base + "_N",
                    Num(without.best_metrics.sharpe_valid),
                    Num(without.best_metrics.ic_valid), Corr(corr_n),
                    std::to_string(without.stats.candidates)});
    } else {
      table.AddRow({base + "_N", "NA", "NA", "NA",
                    std::to_string(without.stats.candidates)});
    }

    // Grow the accepted set with the pruned variant's winner (the paper's
    // main pipeline uses the technique; `_N` rows are the ablation).
    if (with.has_alpha) {
      miner.Accept(base, with.best, with.best_metrics);
    }
  }
  table.Print(std::cout);
  std::printf("\nsearched alphas per unit time: pruning %lld vs no-pruning "
              "%lld (%.1fx)\n",
              static_cast<long long>(total_pruned),
              static_cast<long long>(total_nofp),
              total_nofp > 0 ? static_cast<double>(total_pruned) /
                                   static_cast<double>(total_nofp)
                             : 0.0);
  return 0;
}

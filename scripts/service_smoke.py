#!/usr/bin/env python3
"""End-to-end smoke for the resident alpha service daemon.

Starts ./alpha_serviced on pipes, drives the full op catalog over the
line-delimited JSON protocol — health, submit_search, job_status polling,
job_result, query_alphas, signals, backtest, stress, metrics, error paths —
and finishes with a drain op, asserting the daemon exits 0.

Usage: scripts/service_smoke.py [build_dir]
"""

import json
import subprocess
import sys
import time


class Daemon:
    """One alpha_serviced process driven over stdin/stdout pipes."""

    def __init__(self, binary, *flags):
        self.proc = subprocess.Popen(
            [binary, *flags],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            bufsize=1,
        )
        self.pending = {}  # id -> (doc, raw line), responses read early

    def send(self, op, rid, params=None, deadline_ms=None):
        req = {"op": op, "id": rid}
        if params is not None:
            req["params"] = params
        if deadline_ms is not None:
            req["deadline_ms"] = deadline_ms
        self.proc.stdin.write(json.dumps(req) + "\n")
        self.proc.stdin.flush()

    def wait(self, rid, timeout=120.0):
        """Returns (parsed, raw_line) for the response matching rid."""
        if rid in self.pending:
            return self.pending.pop(rid)
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                raise RuntimeError(
                    f"daemon closed stdout waiting for {rid!r} "
                    f"(exit {self.proc.poll()})"
                )
            doc = json.loads(line)
            if doc["id"] == rid:
                return doc, line.rstrip("\n")
            self.pending[doc["id"]] = (doc, line.rstrip("\n"))
        raise TimeoutError(f"no response for {rid!r} within {timeout}s")

    def call(self, op, rid, params=None, deadline_ms=None, timeout=120.0):
        self.send(op, rid, params, deadline_ms)
        return self.wait(rid, timeout)[0]

    def ok(self, op, rid, params=None, timeout=120.0):
        doc = self.call(op, rid, params, timeout=timeout)
        assert doc.get("ok"), f"{op} failed: {doc}"
        return doc["result"]

    def err(self, op, rid, params=None):
        doc = self.call(op, rid, params)
        assert not doc.get("ok"), f"{op} unexpectedly succeeded: {doc}"
        return doc["error"]["code"]

    def close(self, expect_exit=0, timeout=120.0):
        self.proc.stdin.close()
        status = self.proc.wait(timeout=timeout)
        assert status == expect_exit, f"daemon exited {status}"


def wait_for_state(daemon, job, states, timeout=300.0):
    deadline = time.monotonic() + timeout
    n = 0
    while time.monotonic() < deadline:
        n += 1
        status = daemon.ok("job_status", f"poll-{n}", {"job": job})
        if status["state"] in states:
            return status
        time.sleep(0.1)
    raise TimeoutError(f"{job} never reached {states}")


def main():
    build = sys.argv[1] if len(sys.argv) > 1 else "build"
    binary = f"{build}/alpha_serviced"
    daemon = Daemon(
        binary,
        "--stocks=24", "--days=220", "--data-seed=13",
        "--max-candidates=96", "--checkpoint-every=2", "--telemetry",
    )

    health = daemon.ok("health", "h1")
    assert health["status"] == "ok" and health["ready"], health
    assert health["queue_capacity"] > 0, health

    # Error paths answer with structured codes, and the daemon keeps serving.
    daemon.proc.stdin.write("this is not json\n")
    daemon.proc.stdin.flush()
    bad, _ = daemon.wait("")
    assert bad["error"]["code"] == "bad_request", bad
    assert daemon.err("job_status", "e1", {"job": "job-99"}) == "not_found"
    assert daemon.err("submit_search", "e2", {"batch_size": 0}) == \
        "invalid_argument"
    assert daemon.err("teleport", "e3") == "bad_request"

    # One full supervised search through the protocol.
    submitted = daemon.ok("submit_search", "s1", {"seed": 7})
    job = submitted["job"]
    status = wait_for_state(daemon, job, {"done", "failed"})
    assert status["state"] == "done", status
    assert status["attempts"] >= 1 and status["has_result"], status

    result = daemon.ok("job_result", "r1", {"job": job})
    assert result["has_alpha"], result
    assert "metrics" in result and "stats" in result, result
    assert result["stats"]["candidates"] > 0, result

    alphas = daemon.ok("query_alphas", "qa1")["alphas"]
    assert len(alphas) == 1 and alphas[0]["job"] == job, alphas

    signals = daemon.ok("signals", "sg1", {"job": job, "split": "valid",
                                           "date": 0})
    assert len(signals["predictions"]) > 0, signals
    assert daemon.err("signals", "sg2", {"job": job, "date": 10**6}) == \
        "invalid_argument"

    backtest = daemon.ok("backtest", "bt1", {"job": job})
    assert backtest["ic_valid"] == result["metrics"]["ic_valid"], \
        (backtest, result)

    stress = daemon.ok("stress", "st1", {"job": job, "scenarios": 2},
                       timeout=300.0)
    assert len(stress["scenarios"]) == 2, stress
    for cell in stress["scenarios"]:
        assert "scenario" in cell and "ic_valid" in cell, cell

    metrics = daemon.ok("metrics", "m1")
    assert metrics["counters"].get("service.ops_completed", 0) > 0, metrics

    # Drain: the daemon acknowledges, refuses new work, exits 0.
    drained = daemon.ok("drain", "d1")
    assert drained["draining"], drained
    daemon.close(expect_exit=0)
    print("service smoke ok: full op catalog over one mined alpha")


if __name__ == "__main__":
    main()

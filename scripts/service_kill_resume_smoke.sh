#!/usr/bin/env bash
# Daemon kill-and-resume smoke: SIGKILL alpha_serviced while a supervised
# search job is mid-run, restart it on the same checkpoint directory, and
# require the auto-resumed job's job_result response to be byte-identical to
# the one an uninterrupted daemon produces for the same spec.
#
# The kill is timed off the job's own progress (job_status polling — SIGKILL
# once >= 2 batch barriers committed, well before the ~30-batch budget), so
# the race window is wide; if the job still finishes first (pathologically
# fast box), the run is retried with AE_FAULT=crash_after_write@3, which
# _Exit(42)s the daemon right after the third snapshot publish — the same
# no-cleanup death.
#
# Usage: scripts/service_kill_resume_smoke.sh [build_dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
DAEMON="$BUILD_DIR/alpha_serviced"
if [[ ! -x "$DAEMON" ]]; then
  echo "error: $DAEMON not built" >&2
  exit 1
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

python3 - "$DAEMON" "$WORK" <<'PY'
import json
import os
import signal
import subprocess
import sys
import time

daemon_path, work = sys.argv[1], sys.argv[2]
FLAGS = ["--stocks=24", "--days=220", "--data-seed=13",
         "--max-candidates=480", "--checkpoint-every=2"]
SPEC = {"seed": 7, "max_candidates": 480}


def start(ckpt_dir, env=None):
    full_env = dict(os.environ)
    if env:
        full_env.update(env)
    return subprocess.Popen(
        [daemon_path, f"--checkpoint-dir={ckpt_dir}", *FLAGS],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL, text=True, bufsize=1, env=full_env)


def call(proc, op, rid, params=None, timeout=300.0):
    req = {"op": op, "id": rid}
    if params is not None:
        req["params"] = params
    proc.stdin.write(json.dumps(req) + "\n")
    proc.stdin.flush()
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError(f"daemon died waiting for {rid!r}")
        doc = json.loads(line)
        if doc["id"] == rid:
            assert doc.get("ok"), f"{op} failed: {doc}"
            return doc, line.rstrip("\n")
    raise TimeoutError(rid)


def wait_done(proc, job, timeout=600.0):
    deadline = time.monotonic() + timeout
    n = 0
    while time.monotonic() < deadline:
        n += 1
        doc, _ = call(proc, "job_status", f"p{n}", {"job": job})
        if doc["result"]["state"] == "done":
            return doc["result"]
        time.sleep(0.05)
    raise TimeoutError(job)


def result_line(proc, job):
    # The fixed request id makes the whole response line byte-comparable.
    _, raw = call(proc, "job_result", "final", {"job": job})
    return raw


# --- Reference: one uninterrupted daemon mines the spec to completion.
print("== reference daemon (uninterrupted) ==")
ref = start(f"{work}/ck_ref")
job, _ = call(ref, "submit_search", "s", SPEC)
job = job["result"]["job"]
wait_done(ref, job)
ref_line = result_line(ref, job)
ref.stdin.close()
assert ref.wait(timeout=120) == 0
print(f"reference {job} done")

# --- Interrupted: SIGKILL mid-run, keyed off committed batch barriers.
print("== interrupted daemon (SIGKILL mid-job) ==")
crash_dir = f"{work}/ck_crash"
victim = start(crash_dir)
job2, _ = call(victim, "submit_search", "s", SPEC)
job2 = job2["result"]["job"]
killed = False
for n in range(2000):
    doc, _ = call(victim, "job_status", f"k{n}", {"job": job2})
    state = doc["result"]
    if state["state"] == "done":
        break
    # Kill only once a snapshot is durable on disk: the background publisher
    # lags the batch barrier that queued it, and a kill before the first
    # publish would test the fresh-start path, not resume.
    durable = any(f.endswith(".ckpt") and ".result." not in f
                  for f in os.listdir(crash_dir))
    if state["batches_committed"] >= 2 and durable:
        victim.kill()  # SIGKILL: no handlers, no flush, no manifest save
        victim.wait()
        killed = True
        print(f"SIGKILLed at batch {state['batches_committed']}")
        break
    time.sleep(0.01)

if not killed:
    print("job finished before the signal; retrying with deterministic "
          "crash injection")
    import shutil
    shutil.rmtree(crash_dir, ignore_errors=True)
    victim = start(crash_dir, env={"AE_FAULT": "crash_after_write@3"})
    job2, _ = call(victim, "submit_search", "s", SPEC)
    job2 = job2["result"]["job"]
    status = victim.wait(timeout=600)
    assert status == 42, f"crash injection did not fire (exit {status})"
    print("crashed after the 3rd snapshot publish (exit 42)")

ckpts = [f for f in os.listdir(crash_dir) if f.endswith(".ckpt")]
assert ckpts, "no snapshots survived the kill"

# --- Restart on the same directory: Recover requeues and auto-resumes.
print("== restarted daemon (auto-resume) ==")
revived = start(crash_dir)
status = wait_done(revived, job2)
assert status["resumes"] >= 1 or status["attempts"] >= 2, status
out_line = result_line(revived, job2)
revived.stdin.close()
assert revived.wait(timeout=120) == 0

if out_line != ref_line:
    print("FAIL: resumed job_result differs from the uninterrupted "
          "reference", file=sys.stderr)
    print(f"  ref: {ref_line}", file=sys.stderr)
    print(f"  got: {out_line}", file=sys.stderr)
    sys.exit(1)
print("PASS: resumed job_result is byte-identical to the uninterrupted run")
PY

#!/usr/bin/env bash
# Records the repo's perf trajectory for this PR into BENCH_<N>.json at the
# repo root:
#   BENCH_2.json — executor-sharding throughput (BM_ExecutorSharded at
#                  1/2/4/8 intra-candidate threads, >=1000-task universe)
#   BENCH_3.json — scenario-suite robustness fan-out (BM_RobustnessSuite at
#                  1/2/4/8 threads: scenarios/sec, speedup vs serial sweep)
#
# Usage: scripts/record_bench.sh [build_dir] [sharded_out] [robustness_out]
set -euo pipefail

BUILD_DIR="${1:-build}"
SHARDED_OUT="${2:-BENCH_2.json}"
ROBUSTNESS_OUT="${3:-BENCH_3.json}"

if [[ ! -x "$BUILD_DIR/bench_micro" ]]; then
  echo "error: $BUILD_DIR/bench_micro not built (google-benchmark missing?)" >&2
  exit 1
fi

"$BUILD_DIR/bench_micro" \
  --benchmark_filter='BM_ExecutorSharded' \
  --benchmark_out="$SHARDED_OUT" \
  --benchmark_out_format=json \
  --benchmark_repetitions=1

echo "wrote $SHARDED_OUT"

"$BUILD_DIR/bench_micro" \
  --benchmark_filter='BM_RobustnessSuite' \
  --benchmark_out="$ROBUSTNESS_OUT" \
  --benchmark_out_format=json \
  --benchmark_repetitions=1

echo "wrote $ROBUSTNESS_OUT"

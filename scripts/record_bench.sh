#!/usr/bin/env bash
# Records the repo's perf trajectory for this PR: executor-sharding
# throughput (BM_ExecutorSharded at 1/2/4/8 intra-candidate threads over a
# >=1000-task universe) into BENCH_<N>.json at the repo root.
#
# Usage: scripts/record_bench.sh [build_dir] [out_file]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_2.json}"

if [[ ! -x "$BUILD_DIR/bench_micro" ]]; then
  echo "error: $BUILD_DIR/bench_micro not built (google-benchmark missing?)" >&2
  exit 1
fi

"$BUILD_DIR/bench_micro" \
  --benchmark_filter='BM_ExecutorSharded' \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  --benchmark_repetitions=1

echo "wrote $OUT"

#!/usr/bin/env bash
# Records the repo's perf trajectory for this PR into BENCH_<N>.json at the
# repo root:
#   BENCH_2.json — executor-sharding throughput (BM_ExecutorSharded at
#                  1/2/4/8 intra-candidate threads, >=1000-task universe)
#   BENCH_3.json — scenario-suite robustness fan-out (BM_RobustnessSuite at
#                  1/2/4/8 threads: scenarios/sec, speedup vs serial sweep)
#   BENCH_4.json — executor kernel speedups: BM_FusedSegment (fused vs
#                  interpreter cands/sec + per-cand CPU-ms at 1/4/8
#                  threads), BM_BlockedMatMul (GFLOP proxy, blocked vs
#                  naive), BM_ArenaBarrier/BM_PoolForBarrier (per-segment
#                  barrier cost, persistent arena vs pool re-submission)
#   BENCH_5.json — async pipelined evolution driver (BM_EvolutionPipelined:
#                  cands/sec at pipeline depths 0/1/2, speedup vs the
#                  synchronous depth-0 driver; AE_BENCH_THREADS sets the
#                  worker count)
#
# Every record gets a top-level "machine" object (core count, CPU model,
# AE_NATIVE on/off, hostname) so numbers from the 1-core dev box and the
# multicore CI runners are comparable across the PR trajectory.
#
# Usage: scripts/record_bench.sh [build_dir] [sharded_out] [robustness_out]
#                                [kernels_out] [pipeline_out]
set -euo pipefail

BUILD_DIR="${1:-build}"
SHARDED_OUT="${2:-BENCH_2.json}"
ROBUSTNESS_OUT="${3:-BENCH_3.json}"
KERNELS_OUT="${4:-BENCH_4.json}"
PIPELINE_OUT="${5:-BENCH_5.json}"

if [[ ! -x "$BUILD_DIR/bench_micro" ]]; then
  echo "error: $BUILD_DIR/bench_micro not built (google-benchmark missing?)" >&2
  exit 1
fi

# AE_NATIVE is a CMake option; read the build's actual setting so the record
# states which ISA the kernels were compiled for.
AE_NATIVE_SETTING="unknown"
if [[ -f "$BUILD_DIR/CMakeCache.txt" ]]; then
  AE_NATIVE_SETTING="$(sed -n 's/^AE_NATIVE:BOOL=//p' "$BUILD_DIR/CMakeCache.txt")"
  AE_NATIVE_SETTING="${AE_NATIVE_SETTING:-unknown}"
fi
export AE_NATIVE_SETTING

annotate() {
  python3 - "$1" <<'PY'
import json, os, platform, sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)

cpu_model = ""
try:
    with open("/proc/cpuinfo") as f:
        for line in f:
            if line.lower().startswith("model name"):
                cpu_model = line.split(":", 1)[1].strip()
                break
except OSError:
    pass

doc["machine"] = {
    "num_cores": os.cpu_count(),
    "cpu_model": cpu_model or platform.processor(),
    "ae_native": os.environ.get("AE_NATIVE_SETTING", "unknown"),
    "hostname": platform.node(),
    "platform": platform.platform(),
    "bench_threads_env": os.environ.get("AE_BENCH_THREADS", ""),
}
with open(path, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
PY
}

record() {
  local filter="$1" out="$2"
  "$BUILD_DIR/bench_micro" \
    --benchmark_filter="$filter" \
    --benchmark_out="$out" \
    --benchmark_out_format=json \
    --benchmark_repetitions=1
  annotate "$out"
  echo "wrote $out"
}

record 'BM_ExecutorSharded' "$SHARDED_OUT"
record 'BM_RobustnessSuite' "$ROBUSTNESS_OUT"
record 'BM_FusedSegment|BM_BlockedMatMul|BM_ArenaBarrier|BM_PoolForBarrier' \
  "$KERNELS_OUT"
record 'BM_EvolutionPipelined' "$PIPELINE_OUT"

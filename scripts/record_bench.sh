#!/usr/bin/env bash
# Records the repo's perf trajectory for this PR into BENCH_<N>.json at the
# repo root:
#   BENCH_2.json — executor-sharding throughput (BM_ExecutorSharded at
#                  1/2/4/8 intra-candidate threads, >=1000-task universe)
#   BENCH_3.json — scenario-suite robustness fan-out (BM_RobustnessSuite at
#                  1/2/4/8 threads: scenarios/sec, speedup vs serial sweep)
#   BENCH_4.json — executor kernel speedups: BM_FusedSegment (fused vs
#                  interpreter cands/sec + per-cand CPU-ms at 1/4/8
#                  threads), BM_BlockedMatMul (GFLOP proxy, blocked vs
#                  naive), BM_ArenaBarrier/BM_PoolForBarrier (per-segment
#                  barrier cost, persistent arena vs pool re-submission)
#
# Usage: scripts/record_bench.sh [build_dir] [sharded_out] [robustness_out]
#                                [kernels_out]
set -euo pipefail

BUILD_DIR="${1:-build}"
SHARDED_OUT="${2:-BENCH_2.json}"
ROBUSTNESS_OUT="${3:-BENCH_3.json}"
KERNELS_OUT="${4:-BENCH_4.json}"

if [[ ! -x "$BUILD_DIR/bench_micro" ]]; then
  echo "error: $BUILD_DIR/bench_micro not built (google-benchmark missing?)" >&2
  exit 1
fi

"$BUILD_DIR/bench_micro" \
  --benchmark_filter='BM_ExecutorSharded' \
  --benchmark_out="$SHARDED_OUT" \
  --benchmark_out_format=json \
  --benchmark_repetitions=1

echo "wrote $SHARDED_OUT"

"$BUILD_DIR/bench_micro" \
  --benchmark_filter='BM_RobustnessSuite' \
  --benchmark_out="$ROBUSTNESS_OUT" \
  --benchmark_out_format=json \
  --benchmark_repetitions=1

echo "wrote $ROBUSTNESS_OUT"

"$BUILD_DIR/bench_micro" \
  --benchmark_filter='BM_FusedSegment|BM_BlockedMatMul|BM_ArenaBarrier|BM_PoolForBarrier' \
  --benchmark_out="$KERNELS_OUT" \
  --benchmark_out_format=json \
  --benchmark_repetitions=1

echo "wrote $KERNELS_OUT"

#!/usr/bin/env bash
# Records the repo's perf trajectory for this PR into BENCH_<N>.json at the
# repo root. The manifest below is the single source of truth: one
# "<default_out> <benchmark_filter>" line per record — adding a bench to the
# trajectory is a one-line append.
#
#   BENCH_2.json — executor-sharding throughput (BM_ExecutorSharded at
#                  1/2/4/8 intra-candidate threads, >=1000-task universe)
#   BENCH_3.json — scenario-suite robustness fan-out (BM_RobustnessSuite at
#                  1/2/4/8 threads: scenarios/sec, speedup vs serial sweep)
#   BENCH_4.json — executor kernel speedups: BM_FusedSegment (fused vs
#                  interpreter cands/sec + per-cand CPU-ms at 1/4/8
#                  threads), BM_BlockedMatMul (GFLOP proxy, blocked vs
#                  naive), BM_ArenaBarrier/BM_PoolForBarrier (per-segment
#                  barrier cost, persistent arena vs pool re-submission)
#   BENCH_5.json — async pipelined evolution driver (BM_EvolutionPipelined:
#                  cands/sec at pipeline depths 0/1/2, speedup vs the
#                  synchronous depth-0 driver; AE_BENCH_THREADS sets the
#                  worker count)
#   BENCH_6.json — runtime-dispatched kernel variants
#                  (BM_DispatchedMatMul: the per-ISA matmul tables vs the
#                  scalar reference, registered for exactly the variants
#                  this host can run) and relation-in-plan lowering
#                  (BM_FusedRelationSegment: relation micro-phases inside
#                  the arena schedule vs the per-relation barrier path)
#   BENCH_7.json — stress-in-the-loop mining (BM_ScenarioFitness: cands/sec
#                  mining against the full 7-regime suite, copy-on-write
#                  overlay panels vs materialized ones — peak panel bytes +
#                  memory ratio — and cheap-first screening on vs off)
#   BENCH_8.json — telemetry overhead (BM_TelemetryOverhead: mining cands/sec
#                  with the obs layer disabled / counters-only / full span
#                  tracing; overhead_pct vs the disabled run — acceptance is
#                  full tracing under 5%)
#   BENCH_9.json — checkpointing overhead (BM_CheckpointOverhead: mining
#                  cands/sec with snapshots off / every 8 batches / every
#                  batch; overhead_pct vs the off run plus snapshot bytes
#                  and fsync+rename write ms — acceptance is the default
#                  cadence under 3%)
#   BENCH_10.json — resident-service op throughput (BM_ServiceOps: req/sec
#                  and queue-to-response p50/p99 µs from the
#                  service.op_micros histogram, for job_status / cached
#                  signals lookups / submit+cancel round trips against a
#                  live AlphaService)
#
# Every record gets a top-level "machine" object (core count, CPU model,
# AE_NATIVE on/off, hostname, and — from bench_micro's own context — the
# detected and active kernel variant) so numbers from the 1-core dev box and
# the multicore CI runners are comparable across the PR trajectory.
#
# Usage: scripts/record_bench.sh [build_dir] [out1 out2 ...]
# Positional outputs override the manifest's default filenames in order; "-"
# skips that record (so one bench can be re-recorded without re-running all).
# AE_BENCH_REPETITIONS (default 1) sets --benchmark_repetitions per record.
set -euo pipefail

BUILD_DIR="${1:-build}"
shift $(( $# > 0 ? 1 : 0 ))

# The bench manifest: "<default_out> <benchmark_filter>".
BENCHES=(
  "BENCH_2.json BM_ExecutorSharded"
  "BENCH_3.json BM_RobustnessSuite"
  "BENCH_4.json BM_FusedSegment|BM_BlockedMatMul|BM_ArenaBarrier|BM_PoolForBarrier"
  "BENCH_5.json BM_EvolutionPipelined"
  "BENCH_6.json BM_DispatchedMatMul|BM_FusedRelationSegment"
  "BENCH_7.json BM_ScenarioFitness"
  "BENCH_8.json BM_TelemetryOverhead"
  "BENCH_9.json BM_CheckpointOverhead"
  "BENCH_10.json BM_ServiceOps"
)

if [[ ! -x "$BUILD_DIR/bench_micro" ]]; then
  echo "error: $BUILD_DIR/bench_micro not built (google-benchmark missing?)" >&2
  exit 1
fi

# AE_NATIVE is a CMake option; read the build's actual setting so the record
# states which ISA the kernels were compiled for.
AE_NATIVE_SETTING="unknown"
if [[ -f "$BUILD_DIR/CMakeCache.txt" ]]; then
  AE_NATIVE_SETTING="$(sed -n 's/^AE_NATIVE:BOOL=//p' "$BUILD_DIR/CMakeCache.txt")"
  AE_NATIVE_SETTING="${AE_NATIVE_SETTING:-unknown}"
fi
export AE_NATIVE_SETTING

annotate() {
  python3 - "$1" <<'PY'
import json, os, platform, sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)

cpu_model = ""
try:
    with open("/proc/cpuinfo") as f:
        for line in f:
            if line.lower().startswith("model name"):
                cpu_model = line.split(":", 1)[1].strip()
                break
except OSError:
    pass

doc["machine"] = {
    "num_cores": os.cpu_count(),
    "cpu_model": cpu_model or platform.processor(),
    "ae_native": os.environ.get("AE_NATIVE_SETTING", "unknown"),
    "hostname": platform.node(),
    "platform": platform.platform(),
    "bench_threads_env": os.environ.get("AE_BENCH_THREADS", ""),
}

# bench_micro stamps the kernel-variant story into the benchmark context
# (AddCustomContext); lift it next to the machine facts so one object says
# what ISA actually ran.
ctx = doc.get("context", {})
for key in ("ae_kernel_variant_detected", "ae_kernel_variant_active",
            "ae_kernel_variants_compiled"):
    if key in ctx:
        doc["machine"][key] = ctx[key]
doc["machine"]["kernel_variant_env"] = os.environ.get("AE_KERNEL_VARIANT", "")
with open(path, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
PY
}

record() {
  local filter="$1" out="$2"
  "$BUILD_DIR/bench_micro" \
    --benchmark_filter="$filter" \
    --benchmark_out="$out" \
    --benchmark_out_format=json \
    --benchmark_repetitions="${AE_BENCH_REPETITIONS:-1}"
  annotate "$out"
  echo "wrote $out"
}

args=("$@")
i=0
for entry in "${BENCHES[@]}"; do
  out="${entry%% *}"
  filter="${entry#* }"
  if (( i < $# )); then
    out="${args[i]}"
  fi
  if [[ "$out" != "-" ]]; then
    record "$filter" "$out"
  fi
  i=$((i + 1))
done

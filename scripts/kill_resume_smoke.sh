#!/usr/bin/env bash
# Kill-and-resume smoke: SIGKILL a checkpointed mining run about halfway
# through, resume it from the newest snapshot, and require the final JSON
# report to be byte-identical to an uninterrupted run's.
#
# Both runs — the reference and the interrupted one — mine with
# --checkpoint-dir (separate directories): checkpointing disables the shared
# round cache, so the uninterrupted reference must run under the same
# configuration for the round stats to be comparable bitwise. Candidate
# budgets (--max-candidates) replace wall-clock budgets so both runs cover
# the same search space.
#
# If the timed SIGKILL loses the race (the run finished first — slow disk,
# fast box), the interruption is retried with the deterministic
# AE_FAULT=crash_after_write@3 injection, which _Exit(42)s the process right
# after the third snapshot publish — the same no-cleanup death as SIGKILL.
#
# Usage: scripts/kill_resume_smoke.sh [build_dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
MINER="$BUILD_DIR/mine_alpha_set"
if [[ ! -x "$MINER" ]]; then
  echo "error: $MINER not built" >&2
  exit 1
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# 2 rounds, no stress suite, 2 threads, pipeline depth 1, 1 search/round,
# 2 shards; candidate-bounded with a tight snapshot cadence.
MINE_ARGS=(2 0 2 1)
MINE_TAIL=(1 2 0 worst --max-candidates=300 --checkpoint-every=2)

echo "== reference run (uninterrupted, checkpointed) =="
start_ns=$(date +%s%N)
"$MINER" "${MINE_ARGS[@]}" "$WORK/ref.json" "${MINE_TAIL[@]}" \
  --checkpoint-dir="$WORK/ck_ref" > /dev/null
ref_ms=$(( ($(date +%s%N) - start_ns) / 1000000 ))
echo "reference finished in ${ref_ms}ms"

echo "== interrupted run (SIGKILL at ~50%) =="
"$MINER" "${MINE_ARGS[@]}" "$WORK/out.json" "${MINE_TAIL[@]}" \
  --checkpoint-dir="$WORK/ck" > /dev/null 2>&1 &
pid=$!
# Sleep half the reference duration, then kill -9 — no handlers, no flush.
python3 -c "import time,sys; time.sleep(float(sys.argv[1])/2000.0)" "$ref_ms"
killed=0
if kill -9 "$pid" 2> /dev/null; then
  killed=1
fi
wait "$pid" && status=0 || status=$?
if [[ "$killed" == 1 && "$status" == 137 ]]; then
  echo "killed mid-run (exit $status)"
else
  echo "run finished before the signal (exit $status); retrying with" \
       "deterministic crash injection"
  rm -rf "$WORK/ck" "$WORK/out.json"
  AE_FAULT=crash_after_write@3 \
    "$MINER" "${MINE_ARGS[@]}" "$WORK/out.json" "${MINE_TAIL[@]}" \
    --checkpoint-dir="$WORK/ck" > /dev/null 2>&1 && status=0 || status=$?
  if [[ "$status" != 42 ]]; then
    echo "error: crash injection did not fire (exit $status)" >&2
    exit 1
  fi
  echo "crashed after the 3rd snapshot (exit 42)"
fi

if ! ls "$WORK/ck"/*.ckpt > /dev/null 2>&1; then
  echo "error: no snapshots survived the kill" >&2
  exit 1
fi

echo "== resumed run =="
"$MINER" "${MINE_ARGS[@]}" "$WORK/out.json" "${MINE_TAIL[@]}" \
  --checkpoint-dir="$WORK/ck" --resume | grep -i "resum" || true

echo "== comparing final reports =="
if ! cmp "$WORK/ref.json" "$WORK/out.json"; then
  echo "FAIL: resumed report differs from the uninterrupted reference" >&2
  exit 1
fi
echo "PASS: resumed JSON is byte-identical to the uninterrupted run"

// Scenario-engine walkthrough: mine a weakly correlated alpha set, then
// stress every accepted alpha across a regime-parameterized market suite
// (crash / bull / sideways / sector rotation / low signal / thin universe)
// with a cost-aware backtest. The miner's accept hook wires the
// RobustnessEvaluator into the mining loop, so each alpha entering A is
// scored out-of-regime the moment it is admitted; the final table is the
// per-alpha RobustnessReport (per-scenario gross/net Sharpe, worst case,
// dispersion).
//
// Run: ./build/stress_alpha_set [rounds] [seconds_per_search] [num_threads]
//                               [num_scenarios] [json_out] [in_loop]
//
// Telemetry (position-independent, see telemetry_flags.h): --telemetry,
// --metrics-out=PATH, --trace-out=PATH, --progress-every=SECS.
// Crash tolerance (see checkpoint_flags.h): --checkpoint-dir=DIR,
// --checkpoint-every=N, --resume, --max-candidates=N, --eval-budget=S.
//
// num_threads drives both the miner's batch workers and the robustness
// fan-out over (alpha, scenario) cells; omitted or <= 0 it falls back to
// AE_BENCH_THREADS (default 1), so CI can steer the smoke run through the
// same knob as the benches. num_scenarios truncates the standard suite
// (CI smoke uses 2). json_out writes the reports as a diffable artifact.
// in_loop=1 mines *with* scenario fitness (worst-case IC across
// copy-on-write overlay panels of the same suite, cheap-first screened)
// instead of plain baseline IC — stress moves from post-hoc filter to
// in-loop objective, and the overlay panels' resident bytes are printed
// against the materialized robustness panels for comparison.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "checkpoint_flags.h"
#include "core/evaluator_pool.h"
#include "core/generators.h"
#include "core/mining.h"
#include "scenario/robustness.h"
#include "scenario/scenario_fitness.h"
#include "telemetry_flags.h"
#include "util/json.h"

using namespace alphaevolve;

namespace {

void PrintReport(const scenario::RobustnessReport& report) {
  std::printf("  %-16s %6s %8s %8s %9s\n", report.alpha_name.c_str(), "IC",
              "SR", "SR_net", "turnover");
  for (const scenario::ScenarioScore& s : report.scenarios) {
    if (!s.valid) {
      std::printf("    %-15s (invalid: non-finite predictions)\n",
                  s.scenario_id.c_str());
      continue;
    }
    std::printf("    %-15s %+.3f %+8.2f %+8.2f %8.1f%%\n",
                s.scenario_id.c_str(), s.ic, s.sharpe_gross, s.sharpe_net,
                100.0 * s.mean_turnover);
  }
  std::printf(
      "    => worst SR %.2f (net %.2f), mean SR %.2f (net %.2f), "
      "dispersion %.2f over %d scenario(s)\n",
      report.worst_sharpe_gross, report.worst_sharpe_net,
      report.mean_sharpe_gross, report.mean_sharpe_net,
      report.sharpe_dispersion, report.num_valid);
}

/// Writes `text` to `path`, failing loudly (CI parses the artifact next).
bool WriteFileOrComplain(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text << "\n";
  if (!out) {
    std::fprintf(stderr, "error: could not write %s\n", path.c_str());
    return false;
  }
  std::printf("wrote %s\n", path.c_str());
  return true;
}

bool WriteJson(const std::string& path, const scenario::ScenarioSuite& suite,
               const scenario::RobustnessConfig& rc,
               const std::vector<scenario::RobustnessReport>& reports) {
  JsonWriter w;
  w.BeginObject();
  w.Key("suite_seed").Value(suite.suite_seed());
  w.Key("cost_per_side_bps").Value(rc.evaluator.costs.per_side_bps);
  w.Key("scenarios").BeginArray();
  for (int i = 0; i < suite.num_scenarios(); ++i) {
    const market::MarketConfig mc = suite.ScenarioConfig(i);
    w.BeginObject();
    w.Key("id").Value(suite.spec(i).id);
    w.Key("description").Value(suite.spec(i).description);
    w.Key("seed").Value(mc.seed);
    w.Key("num_stocks").Value(mc.num_stocks);
    w.EndObject();
  }
  w.EndArray();
  w.Key("reports").BeginArray();
  for (const scenario::RobustnessReport& r : reports) {
    w.BeginObject();
    w.Key("alpha").Value(r.alpha_name);
    w.Key("num_valid").Value(r.num_valid);
    w.Key("worst_sharpe_gross").Value(r.worst_sharpe_gross);
    w.Key("worst_sharpe_net").Value(r.worst_sharpe_net);
    w.Key("mean_sharpe_gross").Value(r.mean_sharpe_gross);
    w.Key("mean_sharpe_net").Value(r.mean_sharpe_net);
    w.Key("sharpe_dispersion").Value(r.sharpe_dispersion);
    w.Key("scenarios").BeginArray();
    for (const scenario::ScenarioScore& s : r.scenarios) {
      w.BeginObject();
      w.Key("id").Value(s.scenario_id);
      w.Key("valid").Value(s.valid);
      w.Key("ic").Value(s.ic);
      w.Key("sharpe_gross").Value(s.sharpe_gross);
      w.Key("sharpe_net").Value(s.sharpe_net);
      w.Key("mean_turnover").Value(s.mean_turnover);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return WriteFileOrComplain(path, w.TakeString());
}

}  // namespace

int main(int argc, char** argv) {
  const examples::TelemetryFlags telemetry =
      examples::StripTelemetryFlags(argc, argv);
  const examples::CheckpointFlags ck =
      examples::StripCheckpointFlags(argc, argv);
  auto progress = examples::StartTelemetry(telemetry);
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 2;
  const double seconds = argc > 2 ? std::atof(argv[2]) : 2.0;
  int num_threads = argc > 3 ? std::atoi(argv[3]) : 0;
  if (num_threads <= 0) {  // fall back to the benches' env knob
    const char* env = std::getenv("AE_BENCH_THREADS");
    num_threads = std::max(1, env != nullptr ? std::atoi(env) : 1);
  }
  const int num_scenarios = argc > 4 ? std::atoi(argv[4]) : 0;  // 0 = all
  const char* json_out = argc > 5 ? argv[5] : nullptr;
  const bool in_loop = argc > 6 && std::atoi(argv[6]) != 0;

  // Base market the alphas are mined in; the suite derives regimes from it.
  market::MarketConfig mc = market::MarketConfig::BenchScale();
  mc.num_stocks = 80;
  mc.num_days = 420;
  mc.seed = 9;

  scenario::ScenarioSuite suite = scenario::ScenarioSuite::Standard(mc, 77);
  if (num_scenarios > 0) suite.Truncate(num_scenarios);

  scenario::RobustnessConfig rc;
  rc.evaluator.costs.per_side_bps = 10.0;  // 10 bps per transaction side
  rc.num_threads = num_threads;
  std::printf("materializing %d scenario(s) on %d thread(s)...\n",
              suite.num_scenarios(), num_threads);
  scenario::RobustnessEvaluator robustness(suite, rc);
  for (int i = 0; i < suite.num_scenarios(); ++i) {
    std::printf("  %-15s %4d tasks — %s\n", suite.spec(i).id.c_str(),
                robustness.dataset(i).num_tasks(),
                suite.spec(i).description.c_str());
  }

  // Mining setup, as in mine_alpha_set. With in_loop, fitness is worst-case
  // IC over the suite served as copy-on-write overlay views (one shared
  // panel + per-regime label deltas) instead of baseline IC alone.
  core::EvaluatorConfig eval_config;
  eval_config.eval_budget_seconds = ck.eval_budget;
  std::unique_ptr<scenario::ScenarioFitness> scorer;
  std::optional<market::Dataset> plain_panel;
  if (in_loop) {
    scorer = std::make_unique<scenario::ScenarioFitness>(
        suite, market::DatasetConfig{}, eval_config,
        core::ScenarioFitnessOptions{});
    size_t materialized_bytes = 0;
    for (int i = 0; i < suite.num_scenarios(); ++i) {
      materialized_bytes += robustness.dataset(i).StorageBytes();
    }
    std::printf(
        "in-loop scenario fitness: %d regime(s) resident in %.1f MiB "
        "(materialized robustness panels: %.1f MiB)\n",
        scorer->num_regimes(),
        static_cast<double>(scorer->panels().ResidentBytes()) / (1024 * 1024),
        static_cast<double>(materialized_bytes) / (1024 * 1024));
  } else {
    plain_panel.emplace(market::Dataset::Simulate(mc, {}));
  }
  const market::Dataset& dataset =
      scorer != nullptr ? scorer->baseline_panel() : *plain_panel;
  core::EvaluatorPool pool(dataset, eval_config, num_threads);
  core::EvolutionConfig config;
  config.max_candidates = ck.max_candidates;  // 0 = wall-clock budgeted
  config.time_budget_seconds = ck.max_candidates > 0 ? 0.0 : seconds;
  config.num_threads = num_threads;
  if (ck.enabled()) config.share_round_cache = false;
  core::WeaklyCorrelatedMiner miner(pool, config);
  if (scorer != nullptr) {
    miner.UseCandidateScorer(scorer.get());
    scorer->set_fanout_pool(pool.thread_pool());
  }

  // Campaign-level crash tolerance, as in mine_alpha_set. Restoring the
  // accepted set happens *before* the accept hook is installed, so resumed
  // alphas are not stress-tested a second time.
  std::unique_ptr<ckpt::CheckpointWriter> campaign_writer;
  std::vector<std::vector<core::SearchStats>> round_stats;
  int start_round = 0;
  double wall_base = 0.0;
  const auto run_start = std::chrono::steady_clock::now();
  if (ck.enabled()) {
    campaign_writer = std::make_unique<ckpt::CheckpointWriter>(
        ck.dir, "stress", ck.ToWriterOptions());
    int64_t generation = 0;
    if (auto state = examples::LoadCampaignResume(ck, "stress", &generation)) {
      for (core::AcceptedAlpha& a : state->accepted) {
        miner.Accept(std::move(a.name), a.program, a.metrics);
      }
      round_stats = std::move(state->round_stats);
      start_round = state->rounds_done;
      wall_base = state->wall_seconds;
      std::printf(
          "resuming from %s generation %lld: %d round(s) done, %zu alpha(s) "
          "accepted, ~%.1fs of prior wall-clock saved\n",
          ck.dir.c_str(), static_cast<long long>(generation), start_round,
          miner.accepted().size(), wall_base);
    }
  }

  // Stress each alpha the moment it enters A.
  miner.set_accept_hook([&](const core::AcceptedAlpha& alpha) {
    std::printf("\nstress test of newly accepted %s:\n", alpha.name.c_str());
    PrintReport(robustness.Evaluate(alpha.program, alpha.name));
  });

  std::printf("\nmining %d round(s), %.1fs each...\n", rounds, seconds);
  for (int round = start_round; round < rounds; ++round) {
    const core::AlphaProgram init = core::MakeExpertAlpha(dataset.window());
    const uint64_t seed = static_cast<uint64_t>(round) + 1;
    std::unique_ptr<ckpt::CheckpointWriter> search_writer;
    std::optional<core::EvolutionCheckpoint> search_resume;
    if (ck.enabled()) {
      const std::string stem = "r" + std::to_string(round);
      search_writer = std::make_unique<ckpt::CheckpointWriter>(
          ck.dir, stem, ck.ToWriterOptions());
      search_resume = examples::LoadSearchResume(ck, stem);
      if (search_resume.has_value()) {
        std::printf("  resuming search %s at batch %lld\n", stem.c_str(),
                    static_cast<long long>(search_resume->batches_committed));
      }
    }
    const core::EvolutionResult r =
        miner.RunSearch(init, seed, search_writer.get(),
                        search_resume.has_value() ? &*search_resume : nullptr);
    round_stats.push_back({core::SearchStats::FromEvolution(seed, r.stats)});
    if (!r.has_alpha) {
      std::printf("round %d: no uncorrelated alpha found\n", round);
    } else {
      miner.Accept("alpha_" + std::to_string(round), r.best, r.best_metrics);
    }
    if (campaign_writer != nullptr) {
      ckpt::CampaignState state;
      state.rounds_done = round + 1;
      state.wall_seconds =
          wall_base + std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - run_start)
                          .count();
      state.accepted = miner.accepted();
      state.round_stats = round_stats;
      campaign_writer->WriteBlob(ckpt::kCampaignSnapshotKind,
                                 ckpt::EncodeCampaign(state));
      if (search_writer != nullptr) {
        // Drain the background publisher before sweeping its stream.
        search_writer->Flush();
        ckpt::RemoveCheckpoints(search_writer->dir(), search_writer->stem());
      }
    }
  }

  // Final robustness pass over the whole accepted set, parallel over the
  // full (alpha, scenario) grid; the expert alpha rides along as context.
  std::vector<core::AcceptedAlpha> set = miner.accepted();
  core::AcceptedAlpha expert;
  expert.name = "expert_baseline";
  expert.program = core::MakeExpertAlpha(dataset.window());
  set.push_back(expert);

  std::printf("\n=== robustness report: %zu alpha(s) x %d scenario(s) ===\n",
              set.size(), suite.num_scenarios());
  const std::vector<scenario::RobustnessReport> reports =
      robustness.EvaluateSet(set);
  for (const scenario::RobustnessReport& report : reports) {
    PrintReport(report);
  }
  if (json_out != nullptr && !WriteJson(json_out, suite, rc, reports)) {
    return 1;
  }
  if (!examples::FinishTelemetry(telemetry, std::move(progress))) return 1;
  return 0;
}

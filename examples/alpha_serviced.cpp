// Resident alpha service daemon: owns one simulated panel + evaluator pool
// for its whole lifetime and serves supervised, crash-recovering search jobs
// over a line-delimited JSON protocol on stdin/stdout (one request per line,
// one response per line; responses may interleave across requests — match
// them by the echoed "id").
//
//   echo '{"op":"health","id":"h1"}' | ./build/alpha_serviced
//
// Op catalog: submit_search, job_status, job_result, list_jobs, cancel_job,
// resume_job, query_alphas, signals, backtest, stress, health, metrics,
// drain (see src/service/alpha_service.h). EOF on stdin is an implicit
// drain: intake stops, admitted ops finish, running jobs checkpoint and
// park, telemetry flushes, then the process exits 0.
//
// Crash recovery: with --checkpoint-dir the daemon replays DIR/jobs.json at
// boot — finished jobs reload their persisted result blobs; jobs that were
// running (or pending) when the previous process died are requeued and
// auto-resume from their newest checkpoint, finishing bit-identical to an
// uninterrupted run (candidate-bounded specs; wall-clock excluded).
//
// Flags (all --key=value):
//   --checkpoint-dir=DIR      durable root (default: in-memory only)
//   --stocks=N --days=N       panel shape (default 24 x 220)
//   --data-seed=N             panel seed (default 13)
//   --eval-threads=N          evaluator pool workers (default 2)
//   --op-workers=N            op worker threads (default 2)
//   --queue-capacity=N        bounded op queue (default 64)
//   --default-deadline-ms=F   deadline for ops that carry none (default 0)
//   --job-workers=N           concurrent searches (default 1)
//   --max-attempts=N          attempts per job incl. first (default 4)
//   --stall-timeout=SECS      heartbeat staleness -> presumed wedged
//   --backoff-initial=SECS --backoff-cap=SECS   retry backoff shape
//   --checkpoint-every=N --checkpoint-keep=K    snapshot cadence/retention
//   --max-candidates=N        default per-job candidate budget (default 240)
//
// Telemetry (see telemetry_flags.h): --telemetry, --metrics-out=PATH,
// --trace-out=PATH, --progress-every=SECS. Artifacts flush on drain and on
// abnormal exit (crash flush); progress lines go to stderr, never stdout.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>
#include <string>

#include "service/alpha_service.h"
#include "telemetry_flags.h"

namespace {

using alphaevolve::service::AlphaService;
using alphaevolve::service::ServiceOptions;

const char* ValueOf(const char* arg, const char* prefix) {
  const size_t n = std::strlen(prefix);
  return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  auto telemetry = alphaevolve::examples::StripTelemetryFlags(argc, argv);
  ServiceOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (const char* v = ValueOf(arg, "--checkpoint-dir=")) {
      options.supervisor.checkpoint_dir = v;
    } else if (const char* v = ValueOf(arg, "--stocks=")) {
      options.num_stocks = std::atoi(v);
    } else if (const char* v = ValueOf(arg, "--days=")) {
      options.num_days = std::atoi(v);
    } else if (const char* v = ValueOf(arg, "--data-seed=")) {
      options.data_seed = static_cast<uint64_t>(std::atoll(v));
    } else if (const char* v = ValueOf(arg, "--eval-threads=")) {
      options.eval_threads = std::atoi(v);
    } else if (const char* v = ValueOf(arg, "--op-workers=")) {
      options.op_workers = std::atoi(v);
    } else if (const char* v = ValueOf(arg, "--queue-capacity=")) {
      options.queue_capacity = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = ValueOf(arg, "--default-deadline-ms=")) {
      options.default_deadline_ms = std::atof(v);
    } else if (const char* v = ValueOf(arg, "--job-workers=")) {
      options.supervisor.worker_threads = std::atoi(v);
    } else if (const char* v = ValueOf(arg, "--max-attempts=")) {
      options.supervisor.max_attempts = std::atoi(v);
    } else if (const char* v = ValueOf(arg, "--stall-timeout=")) {
      options.supervisor.stall_timeout_seconds = std::atof(v);
    } else if (const char* v = ValueOf(arg, "--backoff-initial=")) {
      options.supervisor.backoff_initial_seconds = std::atof(v);
    } else if (const char* v = ValueOf(arg, "--backoff-cap=")) {
      options.supervisor.backoff_cap_seconds = std::atof(v);
    } else if (const char* v = ValueOf(arg, "--checkpoint-every=")) {
      options.supervisor.checkpoint_every_batches = std::atoi(v);
    } else if (const char* v = ValueOf(arg, "--checkpoint-keep=")) {
      options.supervisor.checkpoint_keep = std::atoi(v);
    } else if (const char* v = ValueOf(arg, "--max-candidates=")) {
      options.default_job.max_candidates = std::atoll(v);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return 2;
    }
  }

  auto reporter = alphaevolve::examples::StartTelemetry(telemetry);
  AlphaService service(options);
  std::fprintf(stderr, "[alpha_serviced] serving on stdio (panel %dx%d, %s)\n",
               options.num_stocks, options.num_days,
               options.supervisor.checkpoint_dir.empty()
                   ? "in-memory"
                   : options.supervisor.checkpoint_dir.c_str());

  // Reader loop: stdin lines in, stdout lines out. Responses arrive from op
  // workers, so writes go through one mutex and flush per line (a consumer
  // must never wait on a response stuck in a buffer).
  std::mutex out_mu;
  auto respond = [&out_mu](const std::string& response) {
    std::lock_guard<std::mutex> lock(out_mu);
    std::fputs(response.c_str(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  };
  std::string line;
  while (!service.drain_requested() && std::getline(std::cin, line)) {
    if (line.empty()) continue;
    service.Submit(line, respond);
  }

  if (reporter != nullptr) reporter->Stop();
  service.Drain();  // graceful: finish admitted ops, checkpoint + park jobs
  std::fprintf(stderr, "[alpha_serviced] drained, exiting\n");
  return 0;
}

// Building a new alpha programmatically with the public API: a
// sector-relative momentum alpha that uses an ExtractionOp (long-term
// feature from the input matrix), a RelationOp (sector demeaning — the
// paper's injected domain knowledge) and a learned parameter (an EMA
// maintained by def Update()). Shows the redundancy-pruning analysis and
// the evaluation-free fingerprint on the way.
//
// Run: ./build/examples/custom_alpha_api

#include <cstdio>

#include "core/evaluator.h"
#include "core/pruning.h"
#include "market/dataset.h"
#include "market/features.h"

using namespace alphaevolve;
using core::Instruction;
using core::Op;

namespace {

Instruction Ins(Op op, int out, int in1 = 0, int in2 = 0) {
  Instruction i;
  i.op = op;
  i.out = static_cast<uint8_t>(out);
  i.in1 = static_cast<uint8_t>(in1);
  i.in2 = static_cast<uint8_t>(in2);
  return i;
}

}  // namespace

int main() {
  market::MarketConfig mc = market::MarketConfig::BenchScale();
  mc.num_stocks = 80;
  mc.num_days = 420;
  mc.seed = 21;
  market::Dataset dataset = market::Dataset::Simulate(mc, {});
  const int w = dataset.window();

  core::AlphaProgram alpha;
  // Setup: s2 = EMA decay, s3 = 1 - decay.
  Instruction decay;
  decay.op = Op::kScalarConst;
  decay.out = 2;
  decay.imm0 = 0.9;
  alpha.setup.push_back(decay);
  Instruction one_minus;
  one_minus.op = Op::kScalarConst;
  one_minus.out = 3;
  one_minus.imm0 = 0.1;
  alpha.setup.push_back(one_minus);

  // Predict: 10-day momentum from the input matrix, sector-demeaned, then
  // blended against the learned EMA baseline (parameter s6).
  Instruction now;  // s4 = close today
  now.op = Op::kGetScalar;
  now.out = 4;
  now.idx0 = market::kClose;
  now.idx1 = static_cast<uint8_t>(w - 1);
  alpha.predict.push_back(now);
  Instruction past;  // s5 = close 10 days ago — a long-term feature
  past.op = Op::kGetScalar;
  past.out = 5;
  past.idx0 = market::kClose;
  past.idx1 = static_cast<uint8_t>(w - 11);
  alpha.predict.push_back(past);
  alpha.predict.push_back(Ins(Op::kScalarDiv, 7, 4, 5));   // s7 = now/past
  Instruction demean;  // s8 = s7 - sector mean(s7): RelationOp
  demean.op = Op::kRelationDemean;
  demean.out = 8;
  demean.in1 = 7;
  demean.idx0 = 0;  // sector
  alpha.predict.push_back(demean);
  alpha.predict.push_back(Ins(Op::kScalarSub, 1, 6, 8));   // s1 = EMA - mom
  // Dead code on purpose, to show the pruning analysis below.
  alpha.predict.push_back(Ins(Op::kScalarMul, 9, 4, 4));

  // Update: s6 = 0.9*s6 + 0.1*s8 — an EMA of the demeaned momentum, i.e. a
  // *parameter* carried from training into inference.
  alpha.update.push_back(Ins(Op::kScalarMul, 6, 6, 2));
  alpha.update.push_back(Ins(Op::kScalarMul, 9, 8, 3));
  alpha.update.push_back(Ins(Op::kScalarAdd, 6, 6, 9));

  std::printf("--- custom alpha ---\n%s\n", alpha.ToString().c_str());

  const core::PruneResult pr =
      core::PruneRedundant(alpha, core::ProgramLimits{});
  std::printf("redundancy pruning removed %d instruction(s); fingerprint "
              "%016llx\n\n",
              pr.num_pruned_instructions,
              static_cast<unsigned long long>(core::Fingerprint(pr.pruned)));

  core::Evaluator evaluator(dataset, core::EvaluatorConfig{});
  const core::AlphaMetrics m = evaluator.Evaluate(alpha, /*seed=*/1);
  std::printf("IC:     valid %.4f | test %.4f\n", m.ic_valid, m.ic_test);
  std::printf("Sharpe: valid %.3f | test %.3f\n", m.sharpe_valid,
              m.sharpe_test);
  return 0;
}

// Quickstart: simulate a market, evolve an alpha from the expert
// initialization, and report IC / Sharpe / the evolved program.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "core/evolution.h"
#include "core/generators.h"
#include "core/mining.h"
#include "eval/portfolio.h"
#include "market/dataset.h"

using namespace alphaevolve;

int main() {
  // 1. A synthetic NASDAQ-like market (see DESIGN.md for the substitution
  //    rationale) and the paper's dataset layout.
  market::MarketConfig mc = market::MarketConfig::BenchScale();
  mc.num_stocks = 48;
  mc.num_days = 300;
  mc.seed = 7;
  market::Dataset dataset = market::Dataset::Simulate(mc, {});
  std::printf("dataset: %d stocks x %d days (%zu train / %zu valid / %zu test)\n",
              dataset.num_tasks(), dataset.num_days(),
              dataset.dates(market::Split::kTrain).size(),
              dataset.dates(market::Split::kValid).size(),
              dataset.dates(market::Split::kTest).size());

  // 2. An evaluator: one-epoch training, IC fitness, long-short portfolio.
  core::EvaluatorConfig ec;
  core::Evaluator evaluator(dataset, ec);

  // 3. The domain-expert starting alpha, scored before evolution.
  core::Mutator mutator{core::MutatorConfig{}};
  Rng rng(1);
  const core::AlphaProgram expert =
      core::MakeInitialAlpha(core::InitKind::kExpert, mutator, rng);
  core::AlphaMetrics before = evaluator.Evaluate(expert, /*seed=*/1);
  std::printf("\nexpert alpha before evolving: IC(valid)=%.4f Sharpe(test)=%.3f\n",
              before.ic_valid, before.sharpe_test);

  // 4. Evolve it.
  core::EvolutionConfig cfg;
  cfg.max_candidates = 1500;
  cfg.seed = 11;
  core::Evolution evolution(evaluator, cfg);
  core::EvolutionResult result = evolution.Run(expert);

  if (!result.has_alpha) {
    std::printf("search failed to find a valid alpha\n");
    return 1;
  }
  std::printf("\nevolved alpha: IC(valid)=%.4f IC(test)=%.4f Sharpe(test)=%.3f\n",
              result.best_metrics.ic_valid, result.best_metrics.ic_test,
              result.best_metrics.sharpe_test);
  std::printf("searched=%lld evaluated=%lld pruned=%lld cache_hits=%lld\n",
              static_cast<long long>(result.stats.candidates),
              static_cast<long long>(result.stats.evaluated),
              static_cast<long long>(result.stats.pruned_redundant),
              static_cast<long long>(result.stats.cache_hits));
  std::printf("\n--- evolved program ---\n%s", result.best.ToString().c_str());
  return 0;
}

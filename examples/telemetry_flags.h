// Shared telemetry flag handling for the example binaries. Flags are
// position-independent `--key=value` arguments stripped from argv before the
// positional parse, so they compose with every existing invocation:
//
//   --telemetry             enable the metrics registry (counters/histograms)
//   --metrics-out=PATH      write the registry snapshot JSON (implies
//                           --telemetry)
//   --trace-out=PATH        record spans and write Chrome-trace JSON, open in
//                           chrome://tracing or https://ui.perfetto.dev
//                           (implies --telemetry)
//   --progress-every=SECS   stream periodic progress lines to stderr and, with
//                           --metrics-out=X, JSON records to X.progress
//                           (implies --telemetry)
#ifndef ALPHAEVOLVE_EXAMPLES_TELEMETRY_FLAGS_H_
#define ALPHAEVOLVE_EXAMPLES_TELEMETRY_FLAGS_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "obs/flush.h"
#include "obs/progress.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "obs/trace_export.h"

namespace alphaevolve::examples {

struct TelemetryFlags {
  bool enabled = false;
  std::string trace_out;
  std::string metrics_out;
  double progress_every = 0.0;

  obs::TelemetryConfig ToConfig() const {
    obs::TelemetryConfig config;
    config.enabled = enabled;
    config.tracing = !trace_out.empty();
    config.progress_interval_seconds = progress_every;
    return config;
  }
};

/// Removes the telemetry flags from (argc, argv) — leaving the positional
/// arguments contiguous — and returns the parsed values.
inline TelemetryFlags StripTelemetryFlags(int& argc, char** argv) {
  TelemetryFlags flags;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value_of = [arg](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
    };
    if (std::strcmp(arg, "--telemetry") == 0) {
      flags.enabled = true;
    } else if (const char* v = value_of("--trace-out=")) {
      flags.trace_out = v;
      flags.enabled = true;
    } else if (const char* v = value_of("--metrics-out=")) {
      flags.metrics_out = v;
      flags.enabled = true;
    } else if (const char* v = value_of("--progress-every=")) {
      flags.progress_every = std::atof(v);
      flags.enabled = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return flags;
}

/// Applies the flags process-wide and starts the progress stream (if asked
/// for). Call before the mining run; keep the returned reporter alive
/// through it.
inline std::unique_ptr<obs::ProgressReporter> StartTelemetry(
    const TelemetryFlags& flags) {
  if (!flags.enabled) return nullptr;
  obs::Configure(flags.ToConfig());
  std::unique_ptr<obs::ProgressReporter> reporter;
  if (flags.progress_every > 0.0) {
    obs::ProgressReporter::Options options;
    options.interval_seconds = flags.progress_every;
    options.stream = &std::cerr;  // progress lines; stdout keeps the report
    if (!flags.metrics_out.empty()) {
      options.json_path = flags.metrics_out + ".progress";
    }
    reporter = std::make_unique<obs::ProgressReporter>(
        obs::MetricsRegistry::Default(), std::move(options));
  }
  // If the run dies before FinishTelemetry — fatal signal, stray exit() —
  // the hook still flushes the reporter and writes the artifacts, so a
  // crashed campaign keeps its telemetry.
  obs::InstallCrashFlush(
      {flags.metrics_out, flags.trace_out, reporter.get()});
  return reporter;
}

/// Stops the progress stream, writes the requested artifacts, and prints the
/// span summary table. Returns false if a file could not be written.
inline bool FinishTelemetry(const TelemetryFlags& flags,
                            std::unique_ptr<obs::ProgressReporter> reporter) {
  if (!flags.enabled) return true;
  obs::DisarmCrashFlush();  // the normal path below writes the artifacts
  if (reporter != nullptr) reporter->Stop();
  bool ok = true;
  if (!flags.metrics_out.empty()) {
    std::ofstream out(flags.metrics_out);
    out << obs::MetricsRegistry::Default().ToJson() << "\n";
    if (!out) {
      std::fprintf(stderr, "error: could not write %s\n",
                   flags.metrics_out.c_str());
      ok = false;
    } else {
      std::printf("wrote %s\n", flags.metrics_out.c_str());
    }
  }
  if (!flags.trace_out.empty()) {
    std::ofstream out(flags.trace_out);
    out << obs::ToChromeTraceJson(obs::TraceRecorder::Default()) << "\n";
    if (!out) {
      std::fprintf(stderr, "error: could not write %s\n",
                   flags.trace_out.c_str());
      ok = false;
    } else {
      std::printf("wrote %s (open in chrome://tracing or ui.perfetto.dev)\n",
                  flags.trace_out.c_str());
    }
    std::printf("\nspan summary:\n");
    obs::PrintSpanSummary(obs::TraceRecorder::Default(), std::cout);
  }
  return ok;
}

}  // namespace alphaevolve::examples

#endif  // ALPHAEVOLVE_EXAMPLES_TELEMETRY_FLAGS_H_

// The Figure-1 expert workflow on the built-in formulaic-alpha catalogue:
// backtest every classic alpha, rank by validation IC, and show the
// pairwise portfolio-return correlations a hedge fund would screen for.
//
// Run: ./build/examples/alpha_zoo

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/alpha_library.h"
#include "core/evaluator.h"
#include "eval/metrics.h"
#include "market/dataset.h"

using namespace alphaevolve;

int main() {
  market::MarketConfig mc = market::MarketConfig::BenchScale();
  mc.num_stocks = 100;
  mc.num_days = 480;
  mc.seed = 31;
  market::Dataset dataset = market::Dataset::Simulate(mc, {});
  core::Evaluator evaluator(dataset, core::EvaluatorConfig{});

  struct Entry {
    core::LibraryAlpha alpha;
    core::AlphaMetrics metrics;
  };
  std::vector<Entry> zoo;
  for (auto& alpha : core::StandardAlphaLibrary(dataset.window())) {
    core::AlphaMetrics m = evaluator.Evaluate(alpha.program, 1);
    if (m.valid) zoo.push_back({std::move(alpha), std::move(m)});
  }
  std::sort(zoo.begin(), zoo.end(), [](const Entry& a, const Entry& b) {
    return a.metrics.ic_valid > b.metrics.ic_valid;
  });

  std::printf("%-28s %10s %10s %10s %10s\n", "alpha", "IC(v)", "IC(t)",
              "Sharpe(v)", "Sharpe(t)");
  for (const Entry& e : zoo) {
    std::printf("%-28s %10.4f %10.4f %10.3f %10.3f   # %s\n",
                e.alpha.name.c_str(), e.metrics.ic_valid, e.metrics.ic_test,
                e.metrics.sharpe_valid, e.metrics.sharpe_test,
                e.alpha.description.c_str());
  }

  std::printf("\npairwise correlation of validation portfolio returns:\n");
  std::printf("%-28s", "");
  for (size_t j = 0; j < zoo.size(); ++j) std::printf(" %5zu", j);
  std::printf("\n");
  for (size_t i = 0; i < zoo.size(); ++i) {
    std::printf("%2zu %-25s", i, zoo[i].alpha.name.c_str());
    for (size_t j = 0; j < zoo.size(); ++j) {
      std::printf(" %5.2f", eval::PortfolioCorrelation(
                                zoo[i].metrics.valid_portfolio_returns,
                                zoo[j].metrics.valid_portfolio_returns));
    }
    std::printf("\n");
  }
  std::printf("\n(the paper's weak-correlation standard: |corr| <= 0.15)\n");
  return 0;
}

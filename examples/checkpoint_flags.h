// Shared checkpoint/crash-recovery flag handling for the example binaries.
// Like telemetry_flags.h, the flags are position-independent `--key=value`
// arguments stripped from argv before the positional parse:
//
//   --checkpoint-dir=DIR        write generation-numbered snapshots there
//   --checkpoint-every=N        snapshot every N committed batches (def. 8)
//   --checkpoint-every-secs=S   also snapshot every S wall-clock seconds
//   --checkpoint-keep=K         retain the newest K generations (default 3)
//   --resume                    continue from the newest valid snapshot in
//                               --checkpoint-dir instead of starting fresh
//   --max-candidates=N          per-search candidate budget; replaces the
//                               positional time budget so interrupted and
//                               uninterrupted runs cover the same candidates
//                               (required for bit-identical resume)
//   --eval-budget=S             per-candidate evaluation watchdog in seconds
//                               (0 = off; arming trades bit-reproducibility
//                               for liveness on pathological candidates)
#ifndef ALPHAEVOLVE_EXAMPLES_CHECKPOINT_FLAGS_H_
#define ALPHAEVOLVE_EXAMPLES_CHECKPOINT_FLAGS_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "ckpt/checkpoint.h"
#include "core/evolution.h"
#include "util/serde.h"

namespace alphaevolve::examples {

struct CheckpointFlags {
  std::string dir;
  int every_batches = 8;
  double every_seconds = 0.0;
  int keep = 3;
  bool resume = false;
  int64_t max_candidates = 0;
  double eval_budget = 0.0;

  bool enabled() const { return !dir.empty(); }

  ckpt::WriterOptions ToWriterOptions() const {
    ckpt::WriterOptions options;
    options.every_batches = every_batches;
    options.every_seconds = every_seconds;
    options.keep = keep;
    return options;
  }
};

/// Removes the checkpoint flags from (argc, argv) — leaving the positional
/// arguments contiguous — and returns the parsed values.
inline CheckpointFlags StripCheckpointFlags(int& argc, char** argv) {
  CheckpointFlags flags;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value_of = [arg](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
    };
    if (const char* v = value_of("--checkpoint-dir=")) {
      flags.dir = v;
    } else if (const char* v = value_of("--checkpoint-every=")) {
      flags.every_batches = std::atoi(v);
    } else if (const char* v = value_of("--checkpoint-every-secs=")) {
      flags.every_seconds = std::atof(v);
    } else if (const char* v = value_of("--checkpoint-keep=")) {
      flags.keep = std::atoi(v);
    } else if (std::strcmp(arg, "--resume") == 0) {
      flags.resume = true;
    } else if (const char* v = value_of("--max-candidates=")) {
      flags.max_candidates = std::atoll(v);
    } else if (const char* v = value_of("--eval-budget=")) {
      flags.eval_budget = std::atof(v);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  if (flags.enabled() && flags.max_candidates <= 0) {
    std::fprintf(stderr,
                 "warning: --checkpoint-dir without --max-candidates: "
                 "time-budgeted searches resume from the snapshot but cannot "
                 "reproduce the uninterrupted run bit-for-bit\n");
  }
  if (flags.resume && !flags.enabled()) {
    std::fprintf(stderr, "error: --resume requires --checkpoint-dir\n");
    std::exit(2);
  }
  return flags;
}

/// Loads and decodes the newest valid search snapshot of `<dir>/<stem>`;
/// nullopt when none exists (fresh start) or the payload will not decode
/// (warned, treated as no snapshot — never fatal).
inline std::optional<core::EvolutionCheckpoint> LoadSearchResume(
    const CheckpointFlags& flags, const std::string& stem) {
  if (!flags.resume) return std::nullopt;
  const auto loaded = ckpt::LoadNewest(flags.dir, stem);
  if (!loaded.has_value()) return std::nullopt;
  if (loaded->kind != ckpt::kSearchSnapshotKind) {
    std::fprintf(stderr,
                 "warning: %s/%s generation %lld has kind %u, expected a "
                 "search snapshot; starting fresh\n",
                 flags.dir.c_str(), stem.c_str(),
                 static_cast<long long>(loaded->generation), loaded->kind);
    return std::nullopt;
  }
  try {
    return ckpt::DecodeSearchSnapshot(loaded->payload);
  } catch (const serde::Error& e) {
    std::fprintf(stderr,
                 "warning: undecodable search snapshot %s/%s (%s); starting "
                 "fresh\n",
                 flags.dir.c_str(), stem.c_str(), e.what());
    return std::nullopt;
  }
}

/// Loads the newest valid campaign snapshot of `<dir>/<stem>`; nullopt for a
/// fresh start.
inline std::optional<ckpt::CampaignState> LoadCampaignResume(
    const CheckpointFlags& flags, const std::string& stem,
    int64_t* generation = nullptr) {
  if (!flags.resume) return std::nullopt;
  const auto loaded = ckpt::LoadNewest(flags.dir, stem);
  if (!loaded.has_value()) return std::nullopt;
  if (loaded->kind != ckpt::kCampaignSnapshotKind) {
    std::fprintf(stderr,
                 "warning: %s/%s generation %lld has kind %u, expected a "
                 "campaign snapshot; starting fresh\n",
                 flags.dir.c_str(), stem.c_str(),
                 static_cast<long long>(loaded->generation), loaded->kind);
    return std::nullopt;
  }
  try {
    ckpt::CampaignState state = ckpt::DecodeCampaign(loaded->payload);
    if (generation != nullptr) *generation = loaded->generation;
    return state;
  } catch (const serde::Error& e) {
    std::fprintf(stderr,
                 "warning: undecodable campaign snapshot %s/%s (%s); "
                 "starting fresh\n",
                 flags.dir.c_str(), stem.c_str(), e.what());
    return std::nullopt;
  }
}

}  // namespace alphaevolve::examples

#endif  // ALPHAEVOLVE_EXAMPLES_CHECKPOINT_FLAGS_H_

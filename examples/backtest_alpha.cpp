// Backtest walkthrough: evaluate an alpha with the long-short strategy of
// §5.3, print the NAV path, Sharpe and IC on the test period, and
// demonstrate alpha serialization (save → load → identical metrics).
//
// Run: ./build/examples/backtest_alpha

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/evaluator.h"
#include "core/executor.h"
#include "core/generators.h"
#include "eval/metrics.h"
#include "eval/portfolio.h"
#include "market/dataset.h"

using namespace alphaevolve;

int main() {
  market::MarketConfig mc = market::MarketConfig::BenchScale();
  mc.num_stocks = 80;
  mc.num_days = 420;
  mc.seed = 4;
  market::Dataset dataset = market::Dataset::Simulate(mc, {});

  // The domain-expert intraday-reversal alpha.
  const core::AlphaProgram alpha = core::MakeExpertAlpha(dataset.window());
  std::printf("--- alpha under test ---\n%s\n", alpha.ToString().c_str());

  // Serialization round-trip through a file.
  const std::string path = "/tmp/alphaevolve_expert.alpha";
  {
    std::ofstream out(path);
    out << alpha.ToString();
  }
  std::stringstream buf;
  buf << std::ifstream(path).rdbuf();
  const core::AlphaProgram loaded = core::AlphaProgram::FromString(buf.str());
  std::printf("serialization round-trip: %s\n\n",
              loaded == alpha ? "exact" : "MISMATCH");

  // Full evaluation: 1-epoch training + validation + test inference.
  core::Evaluator evaluator(dataset, core::EvaluatorConfig{});
  const core::AlphaMetrics m = evaluator.Evaluate(loaded, /*seed=*/1);
  if (!m.valid) {
    std::printf("alpha produced non-finite predictions\n");
    return 1;
  }
  std::printf("IC:      valid %.4f | test %.4f\n", m.ic_valid, m.ic_test);
  std::printf("Sharpe:  valid %.3f | test %.3f (annualized, Rf=0)\n\n",
              m.sharpe_valid, m.sharpe_test);

  // NAV path of the long-short portfolio over the test period.
  const auto nav = eval::NavPath(m.test_portfolio_returns);
  std::printf("test-period NAV path (long-short, top/bottom %d names):\n",
              eval::PortfolioConfig{}.ResolveTopN(dataset.num_tasks()));
  for (size_t i = 0; i < nav.size(); i += 5) {
    std::printf("  day %3zu  NAV %.4f\n", i, nav[i]);
  }
  std::printf("  final    NAV %.4f\n", nav.back());
  return 0;
}

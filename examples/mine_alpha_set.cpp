// Weakly-correlated alpha-set mining (the paper's §5.4.1 loop): run several
// rounds, each with the 15% cutoff against everything already accepted, and
// show that the final set A is pairwise weakly correlated.
//
// Run: ./build/examples/mine_alpha_set [rounds] [seconds_per_search]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/evaluator.h"
#include "core/generators.h"
#include "core/mining.h"
#include "eval/metrics.h"
#include "market/dataset.h"

using namespace alphaevolve;

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 3;
  const double seconds = argc > 2 ? std::atof(argv[2]) : 3.0;

  market::MarketConfig mc = market::MarketConfig::BenchScale();
  mc.num_stocks = 80;
  mc.num_days = 420;
  mc.seed = 9;
  market::Dataset dataset = market::Dataset::Simulate(mc, {});
  core::Evaluator evaluator(dataset, core::EvaluatorConfig{});

  core::EvolutionConfig config;
  config.max_candidates = 0;
  config.time_budget_seconds = seconds;
  core::WeaklyCorrelatedMiner miner(evaluator, config);

  std::printf("mining %d rounds, %.1fs each, cutoff %.0f%%\n\n", rounds,
              seconds, config.correlation_cutoff * 100);
  for (int round = 0; round < rounds; ++round) {
    const core::AlphaProgram init = core::MakeExpertAlpha(dataset.window());
    const core::EvolutionResult r =
        miner.RunSearch(init, static_cast<uint64_t>(round) + 1);
    if (!r.has_alpha) {
      std::printf("round %d: no uncorrelated alpha found (searched %lld)\n",
                  round, static_cast<long long>(r.stats.candidates));
      continue;
    }
    const double corr = miner.CorrelationWithAccepted(r.best_metrics);
    std::printf(
        "round %d: IC(valid)=%.4f Sharpe(valid)=%.2f corr-with-A=%s "
        "(searched %lld, cutoff-discarded %lld)\n",
        round, r.best_metrics.ic_valid, r.best_metrics.sharpe_valid,
        std::isnan(corr) ? "NA" : std::to_string(corr).c_str(),
        static_cast<long long>(r.stats.candidates),
        static_cast<long long>(r.stats.cutoff_discarded));
    miner.Accept("alpha_" + std::to_string(round), r.best, r.best_metrics);
  }

  // The defining property of A: pairwise weak correlation.
  const auto& accepted = miner.accepted();
  std::printf("\npairwise |correlation| of accepted validation returns:\n");
  for (size_t i = 0; i < accepted.size(); ++i) {
    for (size_t j = 0; j < accepted.size(); ++j) {
      const double c = eval::PortfolioCorrelation(
          accepted[i].metrics.valid_portfolio_returns,
          accepted[j].metrics.valid_portfolio_returns);
      std::printf("%7.3f", c);
    }
    std::printf("   %s\n", accepted[i].name.c_str());
  }
  return 0;
}

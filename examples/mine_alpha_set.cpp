// Weakly-correlated alpha-set mining (the paper's §5.4.1 loop): run several
// rounds, each with the 15% cutoff against everything already accepted, and
// show that the final set A is pairwise weakly correlated. Each round races
// two seeds concurrently on the evaluator pool — sharing one fingerprint
// cache (same round = same fitness function) — and keeps the one with the
// higher validation Sharpe ratio.
//
// Run: ./build/mine_alpha_set [rounds] [seconds_per_search] [num_threads]
//                             [intra_candidate_threads] [json_out] [fuse]
//                             [pipeline_depth] [scenario_regimes]
//                             [aggregation]
//
// scenario_regimes > 0 switches fitness to stress-in-the-loop mining: every
// candidate is scored across the first N standard scenario regimes (served
// as copy-on-write views of one shared base panel), with the cheap baseline
// evaluation screening candidates before the regime fan-out. aggregation
// picks how per-regime ICs combine: worst (default), mean, or cost
// (turnover-penalized mean). scenario_regimes=0 (default) is exactly the
// plain single-panel driver.
//
// num_threads evaluates candidates concurrently (inter-candidate);
// intra_candidate_threads task-shards each candidate's lockstep execution
// (intra-candidate). Both levels share one thread pool. json_out emits the
// accepted alpha set (program text + metrics) and every round's per-search
// SearchStats as a diffable JSON artifact — the mining-side counterpart of
// stress_alpha_set's robustness report. fuse=0 runs the reference
// interpreter instead of the fused micro-op kernels (bit-identical output,
// useful for A/B timing the kernel win on your universe). pipeline_depth
// sets how many evaluation batches each search keeps in flight while it
// generates the next (default 1; 0 = the synchronous driver; any depth is
// bit-identical for candidate-bounded searches — time-budgeted ones, like
// this example's, simply cover more candidates per wall-second).
//
// Telemetry (position-independent, see telemetry_flags.h): --telemetry,
// --metrics-out=PATH, --trace-out=PATH, --progress-every=SECS.
//
// Crash tolerance (position-independent, see checkpoint_flags.h):
// --checkpoint-dir=DIR, --checkpoint-every=N, --checkpoint-every-secs=S,
// --checkpoint-keep=K, --resume, --max-candidates=N, --eval-budget=S.
// With --max-candidates the per-search budget is candidates instead of
// wall-clock, so a SIGKILLed run resumed with --resume finishes with the
// same accepted set, stats, and JSON artifact as an uninterrupted one.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "checkpoint_flags.h"
#include "core/evaluator_pool.h"
#include "core/generators.h"
#include "core/mining.h"
#include "eval/metrics.h"
#include "market/dataset.h"
#include "scenario/scenario.h"
#include "scenario/scenario_fitness.h"
#include "telemetry_flags.h"
#include "util/json.h"

using namespace alphaevolve;

int main(int argc, char** argv) {
  const examples::TelemetryFlags telemetry =
      examples::StripTelemetryFlags(argc, argv);
  const examples::CheckpointFlags ck =
      examples::StripCheckpointFlags(argc, argv);
  auto progress = examples::StartTelemetry(telemetry);
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 3;
  const double seconds = argc > 2 ? std::atof(argv[2]) : 3.0;
  const int num_threads = std::max(1, argc > 3 ? std::atoi(argv[3]) : 1);
  const int intra_threads = std::max(1, argc > 4 ? std::atoi(argv[4]) : 1);
  const char* json_out = argc > 5 ? argv[5] : nullptr;
  const bool fuse = argc > 6 ? std::atoi(argv[6]) != 0 : true;
  const int pipeline_depth = std::max(0, argc > 7 ? std::atoi(argv[7]) : 1);
  const int scenario_regimes = std::max(0, argc > 8 ? std::atoi(argv[8]) : 0);
  const char* aggregation_name = argc > 9 ? argv[9] : "worst";

  market::MarketConfig mc = market::MarketConfig::BenchScale();
  mc.num_stocks = 80;
  mc.num_days = 420;
  mc.seed = 9;
  core::EvaluatorConfig eval_config;
  eval_config.executor.intra_candidate_threads = intra_threads;
  eval_config.executor.fuse_segments = fuse;
  eval_config.eval_budget_seconds = ck.eval_budget;

  // Stress-in-the-loop mode: the scorer owns the base panel plus the
  // copy-on-write regime views; the mining pool evaluates over its baseline
  // panel so the leased evaluator *is* the cheap-first screen's evaluator.
  std::unique_ptr<scenario::ScenarioFitness> scorer;
  std::optional<market::Dataset> plain_panel;
  if (scenario_regimes > 0) {
    scenario::ScenarioSuite suite = scenario::ScenarioSuite::Standard(mc, 77);
    suite.Truncate(scenario_regimes);
    core::ScenarioFitnessOptions options;
    if (std::strcmp(aggregation_name, "mean") == 0) {
      options.aggregation = core::ScenarioAggregation::kMean;
    } else if (std::strcmp(aggregation_name, "cost") == 0) {
      options.aggregation = core::ScenarioAggregation::kCostAdjusted;
    } else {
      aggregation_name = "worst";
    }
    scorer = std::make_unique<scenario::ScenarioFitness>(
        suite, market::DatasetConfig{}, eval_config, options);
  } else {
    plain_panel.emplace(market::Dataset::Simulate(mc, {}));
  }
  const market::Dataset& dataset =
      scorer != nullptr ? scorer->baseline_panel() : *plain_panel;
  core::EvaluatorPool pool(dataset, eval_config, num_threads);

  core::EvolutionConfig config;
  config.max_candidates = ck.max_candidates;  // 0 = wall-clock budgeted
  config.time_budget_seconds = ck.max_candidates > 0 ? 0.0 : seconds;
  config.num_threads = num_threads;  // batch size auto-derives (4x threads)
  config.pipeline_depth = pipeline_depth;
  // Checkpointed searches own their caches (snapshot/restore needs that), so
  // the round-shared cache is off when a checkpoint dir is set.
  if (ck.enabled()) config.share_round_cache = false;
  core::WeaklyCorrelatedMiner miner(pool, config);
  if (scorer != nullptr) {
    miner.UseCandidateScorer(scorer.get());
    scorer->set_fanout_pool(pool.thread_pool());
  }

  std::printf(
      "mining %d rounds, %.1fs each, cutoff %.0f%%, %d thread(s), "
      "%d task shard(s) per candidate, %s kernels, pipeline depth %d\n",
      rounds, seconds, config.correlation_cutoff * 100, num_threads,
      intra_threads, fuse ? "fused" : "interpreter", pipeline_depth);
  if (scorer != nullptr) {
    std::printf(
        "scenario fitness: %d regime(s), %s aggregation, panels resident "
        "%.1f MiB (copy-on-write)\n",
        scorer->num_regimes(), aggregation_name,
        static_cast<double>(scorer->panels().ResidentBytes()) / (1024 * 1024));
  }
  std::printf("\n");
  // Every round's per-search attribution, for the JSON artifact.
  std::vector<std::vector<core::SearchStats>> round_stats;

  // Campaign-level crash tolerance: the "miner" stream snapshots the
  // accepted set + per-round stats after every completed round; per-search
  // "r<round>-s<seed>" streams snapshot at batch barriers inside a round.
  std::unique_ptr<ckpt::CheckpointWriter> campaign_writer;
  int start_round = 0;
  double wall_base = 0.0;
  const auto run_start = std::chrono::steady_clock::now();
  if (ck.enabled()) {
    campaign_writer = std::make_unique<ckpt::CheckpointWriter>(
        ck.dir, "miner", ck.ToWriterOptions());
    int64_t generation = 0;
    if (auto state = examples::LoadCampaignResume(ck, "miner", &generation)) {
      for (core::AcceptedAlpha& a : state->accepted) {
        miner.Accept(std::move(a.name), a.program, a.metrics);
      }
      round_stats = std::move(state->round_stats);
      start_round = state->rounds_done;
      wall_base = state->wall_seconds;
      std::printf(
          "resuming from %s generation %lld: %d round(s) done, %zu alpha(s) "
          "accepted, ~%.1fs of prior wall-clock saved\n\n",
          ck.dir.c_str(), static_cast<long long>(generation), start_round,
          miner.accepted().size(), wall_base);
    }
  }

  for (int round = start_round; round < rounds; ++round) {
    const core::AlphaProgram init = core::MakeExpertAlpha(dataset.window());
    // Two seeds per round, searched concurrently against the same accepted
    // set; keep the winner by validation Sharpe (paper §5.4.1).
    const uint64_t base_seed = static_cast<uint64_t>(round) * 2 + 1;
    std::vector<core::WeaklyCorrelatedMiner::SearchSpec> specs = {
        {init, base_seed}, {init, base_seed + 1}};
    std::vector<std::unique_ptr<ckpt::CheckpointWriter>> search_writers;
    std::vector<std::optional<core::EvolutionCheckpoint>> search_resumes(
        specs.size());
    if (ck.enabled()) {
      for (size_t s = 0; s < specs.size(); ++s) {
        const std::string stem = "r" + std::to_string(round) + "-s" +
                                 std::to_string(specs[s].seed);
        search_writers.push_back(std::make_unique<ckpt::CheckpointWriter>(
            ck.dir, stem, ck.ToWriterOptions()));
        specs[s].checkpoint_sink = search_writers.back().get();
        search_resumes[s] = examples::LoadSearchResume(ck, stem);
        if (search_resumes[s].has_value()) {
          specs[s].resume = &*search_resumes[s];
          std::printf(
              "  resuming search %s at batch %lld (%lld candidates done)\n",
              stem.c_str(),
              static_cast<long long>(search_resumes[s]->batches_committed),
              static_cast<long long>(search_resumes[s]->stats.candidates));
        }
      }
    }
    const std::vector<core::EvolutionResult> results =
        miner.RunSearches(specs);
    const core::EvolutionResult* r = nullptr;
    for (const core::EvolutionResult& candidate : results) {
      if (!candidate.has_alpha) continue;
      if (r == nullptr || candidate.best_metrics.sharpe_valid >
                              r->best_metrics.sharpe_valid) {
        r = &candidate;
      }
    }
    core::EvolutionStats round_totals;
    for (const core::EvolutionResult& candidate : results) {
      round_totals.Merge(candidate.stats);
    }
    const int64_t searched = round_totals.candidates;
    const int64_t discarded = round_totals.cutoff_discarded;
    // Per-search attribution against the round's shared fingerprint cache.
    round_stats.push_back(miner.last_round_stats());
    for (const core::SearchStats& s : miner.last_round_stats()) {
      std::printf(
          "  seed %llu: %lld candidates = %lld evaluated + %lld cache hits "
          "+ %lld pruned",
          static_cast<unsigned long long>(s.seed),
          static_cast<long long>(s.candidates),
          static_cast<long long>(s.evaluated),
          static_cast<long long>(s.cache_hits),
          static_cast<long long>(s.pruned_redundant));
      if (scorer != nullptr) {
        std::printf(" | %lld screened out, %lld regime evals",
                    static_cast<long long>(s.screened_out),
                    static_cast<long long>(s.scenario_evals));
      }
      std::printf("\n");
    }
    if (r == nullptr) {
      std::printf("round %d: no uncorrelated alpha found (searched %lld)\n",
                  round, static_cast<long long>(searched));
    } else {
      const double corr = miner.CorrelationWithAccepted(r->best_metrics);
      std::printf(
          "round %d: IC(valid)=%.4f Sharpe(valid)=%.2f corr-with-A=%s "
          "(searched %lld, cutoff-discarded %lld)\n",
          round, r->best_metrics.ic_valid, r->best_metrics.sharpe_valid,
          std::isnan(corr) ? "NA" : std::to_string(corr).c_str(),
          static_cast<long long>(searched), static_cast<long long>(discarded));
      miner.Accept("alpha_" + std::to_string(round), r->best,
                   r->best_metrics);
    }
    if (campaign_writer != nullptr) {
      ckpt::CampaignState state;
      state.rounds_done = round + 1;
      state.wall_seconds =
          wall_base + std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - run_start)
                          .count();
      state.accepted = miner.accepted();
      state.round_stats = round_stats;
      campaign_writer->WriteBlob(ckpt::kCampaignSnapshotKind,
                                 ckpt::EncodeCampaign(state));
      // The round is durable; its per-search snapshot streams are obsolete.
      // Drain each writer's background publisher first, or a late publish
      // could resurrect a file after the sweep.
      for (const auto& w : search_writers) {
        w->Flush();
        ckpt::RemoveCheckpoints(w->dir(), w->stem());
      }
    }
  }

  // The defining property of A: pairwise weak correlation.
  const auto& accepted = miner.accepted();
  std::printf("\npairwise |correlation| of accepted validation returns:\n");
  for (size_t i = 0; i < accepted.size(); ++i) {
    for (size_t j = 0; j < accepted.size(); ++j) {
      const double c = eval::PortfolioCorrelation(
          accepted[i].metrics.valid_portfolio_returns,
          accepted[j].metrics.valid_portfolio_returns);
      std::printf("%7.3f", c);
    }
    std::printf("   %s\n", accepted[i].name.c_str());
  }

  // Diffable run artifact: the accepted set (program text reusing the
  // Figure-2 `ToString` listing, which `AlphaProgram::FromString`
  // round-trips) plus every round's per-search SearchStats.
  if (json_out != nullptr) {
    JsonWriter w;
    w.BeginObject();
    w.Key("market_seed").Value(mc.seed);
    w.Key("rounds").Value(rounds);
    w.Key("seconds_per_search").Value(seconds);
    w.Key("correlation_cutoff").Value(config.correlation_cutoff);
    w.Key("scenario_regimes").Value(scenario_regimes);
    if (scorer != nullptr) {
      w.Key("aggregation").Value(aggregation_name);
      w.Key("panel_resident_bytes")
          .Value(static_cast<int64_t>(scorer->panels().ResidentBytes()));
    }
    w.Key("round_stats").BeginArray();
    for (const std::vector<core::SearchStats>& round : round_stats) {
      w.BeginArray();
      for (const core::SearchStats& s : round) {
        w.BeginObject();
        w.Key("seed").Value(s.seed);
        w.Key("candidates").Value(s.candidates);
        w.Key("evaluated").Value(s.evaluated);
        w.Key("cache_hits").Value(s.cache_hits);
        w.Key("pruned_redundant").Value(s.pruned_redundant);
        w.Key("screened_out").Value(s.screened_out);
        w.Key("scenario_evals").Value(s.scenario_evals);
        w.Key("eval_timeouts").Value(s.eval_timeouts);
        w.EndObject();
      }
      w.EndArray();
    }
    w.EndArray();
    w.Key("accepted").BeginArray();
    for (const core::AcceptedAlpha& a : accepted) {
      w.BeginObject();
      w.Key("name").Value(a.name);
      w.Key("ic_valid").Value(a.metrics.ic_valid);
      w.Key("ic_test").Value(a.metrics.ic_test);
      w.Key("sharpe_valid").Value(a.metrics.sharpe_valid);
      w.Key("sharpe_test").Value(a.metrics.sharpe_test);
      w.Key("mean_turnover_test").Value(a.metrics.mean_turnover_test);
      w.Key("program").Value(a.program.ToString());
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    std::ofstream out(json_out);
    out << w.TakeString() << "\n";
    if (!out) {
      std::fprintf(stderr, "error: could not write %s\n", json_out);
      return 1;
    }
    std::printf("\nwrote %s\n", json_out);
  }
  if (!examples::FinishTelemetry(telemetry, std::move(progress))) return 1;
  return 0;
}
